"""Transport-independent request handling for the scheduling service.

:class:`ServiceApp` is a plain object mapping ``(method, path, body)`` to
``(status, headers, body)`` — the asyncio server in
:mod:`repro.service.server` is only a thin HTTP shell around it, so the
whole protocol is unit-testable without sockets.

**Content-addressed caching.**  Every scheduling request is normalised and
hashed with :func:`repro.io.json_io.canonical_digest`; the digest keys an
LRU (:class:`ScheduleCache`) whose values are the *serialized response
bodies*.  A cache hit therefore returns the exact bytes the cold run
produced — bit-identity between cached, cold and direct library calls is
structural, not a property to maintain.  Whether a response was served
from cache travels in the ``X-Cache: hit|miss`` header, never in the body
(the body must not depend on cache state).

**Batch offload.**  ``POST /batch`` deduplicates its instances against the
cache *and against each other* (two identical instances in one batch are
scheduled once), then fans the remaining unique misses out over a
*persistent* :class:`concurrent.futures.ProcessPoolExecutor` built with
the :func:`repro.experiments.engine.map_cells` worker/payload pattern
(same ``_init_worker``/``_call_cell`` machinery, worker spawn paid once
per service lifetime, not per request), so serial (``workers=1``) and
parallel batches produce identical bytes by construction.

**Cell execution.**  ``POST /cells`` is the distributed half of the
experiment engine: it runs a chunk of *registered* top-level cell
functions (:func:`repro.experiments.engine.remote_worker` — the wire
carries worker names, never code) against a wire-encoded payload,
streaming one NDJSON row per cell over the same persistent pool.  A
:class:`repro.experiments.remote.RemoteExecutor` shards a sweep's grid
over many such hosts.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Optional
from urllib.parse import parse_qs

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from .. import faults, obs
from ..core.validation import ScheduleError, validate_schedule
from ..obs.metrics import MetricsRegistry
from ..experiments.engine import _call_cell, _init_worker, default_chunk_size
from ..io.json_io import (
    CELL_WIRE_VERSION,
    DIGEST_SCHEMA_VERSION,
    canonical_digest,
    canonical_json,
    from_cell_wire,
    graph_from_dict,
    journal_decode,
    journal_encode,
    platform_from_dict,
    platform_to_dict,
    schedule_to_dict,
    to_cell_wire,
)
from ..scheduling.registry import (
    ENGINE_OPTIONED,
    MEMORY_OBLIVIOUS,
    SCHEDULERS,
)
from ..scheduling.kernel import available_backends, resolve_backend
from ..scheduling.state import InfeasibleScheduleError
from ..online import OnlineSession

#: Protocol revision, reported by ``GET /healthz``.  v2 added the
#: ``POST /cells`` distributed-experiment endpoint; v3 adds
#: ``GET /metrics``, the ``metrics_summary`` healthz block, and
#: ``X-Trace-Id``/``X-Span-Id`` propagation; v4 adds the ``kernel``
#: healthz block (active/available EST kernel backends); v5 adds the
#: stateful online-session surface — ``POST /jobs`` (submit a graph
#: with a release time into a named session), ``GET /jobs`` (session
#: summary + decision journal), ``GET /jobs/{id}`` — and the
#: ``sessions`` healthz block.  All additive, older clients keep
#: working unchanged.
PROTOCOL_VERSION = 5

#: Algorithms accepting the ``comm_policy`` / ``lazy`` engine options (the
#: memory-oblivious heuristics run on fixed unbounded settings).
_OPTIONED = frozenset(ENGINE_OPTIONED)

_DEFAULT_OPTIONS = {"comm_policy": "late", "lazy": True}

#: Paths that get their own ``endpoint`` label on the request metrics;
#: anything else collapses into ``other`` so scrapes stay bounded no
#: matter what clients probe.
_KNOWN_ENDPOINTS = frozenset(
    {"/schedule", "/batch", "/cells", "/algorithms", "/healthz", "/metrics",
     "/jobs"})


class ServiceError(Exception):
    """A request that cannot be served; carries the HTTP status to emit.

    ``err_type`` is a stable machine-readable slug (``bad_request``,
    ``unknown_algorithm``, ``infeasible``, ...), ``message`` the human
    explanation.
    """

    def __init__(self, status: int, err_type: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.err_type = err_type
        self.message = message

    def to_body(self) -> bytes:
        return canonical_json(
            {"error": {"status": self.status, "type": self.err_type,
                       "message": self.message}}
        ).encode("utf-8")


def normalize_options(options: Optional[dict], algorithm: str) -> dict:
    """Validate and default-fill the per-request engine options.

    Filling the defaults *before* hashing means ``{}``,
    ``{"comm_policy": "late"}`` and ``None`` all address the same cache
    entry.  Unknown keys and options on algorithms that do not take them
    are rejected rather than silently ignored — they would otherwise
    fragment the cache without changing the result.
    """
    if options is None:
        options = {}
    if not isinstance(options, dict):
        raise ServiceError(400, "bad_request", "'options' must be an object")
    unknown = set(options) - set(_DEFAULT_OPTIONS)
    if unknown:
        raise ServiceError(
            400, "bad_request",
            f"unknown options: {sorted(unknown)} "
            f"(known: {sorted(_DEFAULT_OPTIONS)})")
    out = dict(_DEFAULT_OPTIONS)
    out.update(options)
    if out["comm_policy"] not in ("late", "eager"):
        raise ServiceError(400, "bad_request",
                           f"comm_policy must be 'late' or 'eager', "
                           f"got {out['comm_policy']!r}")
    out["lazy"] = bool(out["lazy"])
    if algorithm not in _OPTIONED and out != _DEFAULT_OPTIONS:
        raise ServiceError(
            400, "bad_request",
            f"algorithm {algorithm!r} takes no engine options")
    return out


def request_digest(graph_d: dict, platform_d: dict, algorithm: str,
                   options: dict) -> str:
    """:func:`canonical_digest` with protocol-level error mapping: JSON
    payloads can smuggle ``Infinity``/``NaN`` literals past parsing (Python
    accepts them by default), which canonical JSON rejects — that is the
    *request's* fault, not the server's."""
    try:
        return canonical_digest(graph_d, platform_d, algorithm, options)
    except ValueError as exc:
        raise ServiceError(
            400, "bad_request",
            f"non-finite numbers in request (serialize unbounded "
            f"capacities as null): {exc}") from exc


def parse_request(req: object) -> tuple[dict, dict, str, dict]:
    """Validate the shape of one scheduling request; returns the
    ``(graph_dict, platform_dict, algorithm, options)`` quadruple."""
    if not isinstance(req, dict):
        raise ServiceError(400, "bad_request",
                           "request body must be a JSON object")
    missing = [k for k in ("graph", "platform") if k not in req]
    if missing:
        raise ServiceError(400, "bad_request",
                           f"missing required fields: {missing}")
    graph_d, platform_d = req["graph"], req["platform"]
    if not isinstance(graph_d, dict) or not isinstance(platform_d, dict):
        raise ServiceError(400, "bad_request",
                           "'graph' and 'platform' must be JSON objects")
    algorithm = str(req.get("algorithm", "memheft")).lower()
    if algorithm not in SCHEDULERS:
        raise ServiceError(
            400, "unknown_algorithm",
            f"unknown algorithm {algorithm!r}; known: "
            f"{', '.join(sorted(SCHEDULERS))}")
    options = normalize_options(req.get("options"), algorithm)
    return graph_d, platform_d, algorithm, options


def execute_request(graph_d: dict, platform_d: dict, algorithm: str,
                    options: dict, digest: str) -> bytes:
    """Run one scheduling instance to a serialized response body.

    The single cold path shared by ``/schedule``, the in-process half of
    ``/batch`` and the pool workers — identical bytes wherever it runs.
    The schedule is revalidated by the independent validator before being
    served; the reported ``peaks`` are the validator's (replay-side), one
    entry per memory class.
    """
    try:
        graph = graph_from_dict(graph_d)
        platform = platform_from_dict(platform_d)
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(400, "bad_request",
                           f"malformed graph/platform: {exc}") from exc
    if graph.n_classes != platform.n_classes:
        raise ServiceError(
            400, "bad_request",
            f"graph has {graph.n_classes} memory classes but the platform "
            f"has {platform.n_classes}")
    try:
        graph.validate()
    except ValueError as exc:
        raise ServiceError(400, "bad_request", str(exc)) from exc

    scheduler = SCHEDULERS[algorithm]
    kwargs = ({"comm_policy": options["comm_policy"], "lazy": options["lazy"]}
              if algorithm in _OPTIONED else {})
    try:
        schedule = scheduler(graph, platform, **kwargs)
    except InfeasibleScheduleError as exc:
        raise ServiceError(422, "infeasible", str(exc)) from exc
    try:
        peaks = validate_schedule(graph, platform, schedule)
    except ScheduleError as exc:  # pragma: no cover - scheduler bug guard
        raise ServiceError(500, "internal",
                           f"scheduler produced an invalid schedule: {exc}"
                           ) from exc
    response = {
        "digest": digest,
        "algorithm": algorithm,
        "makespan": schedule.makespan,
        "peaks": [peaks[m] for m in platform.memories()],
        "schedule": schedule_to_dict(schedule),
    }
    return canonical_json(response).encode("utf-8")


def _batch_worker(payload: object, cache: dict, cell: tuple) -> tuple:
    """Pool worker for ``/batch`` cache misses (top-level for pickling).

    ``cell`` is ``(graph_d, platform_d, algorithm, options, digest)``;
    returns ``("ok", body)`` or ``("error", status, err_type, message)`` so
    per-instance failures don't poison the whole batch.
    """
    graph_d, platform_d, algorithm, options, digest = cell
    try:
        return ("ok", execute_request(graph_d, platform_d, algorithm,
                                      options, digest))
    except ServiceError as exc:
        return ("error", exc.status, exc.err_type, exc.message)


#: Decoded cell payloads cached per worker process, keyed by payload
#: digest; bounded so a long-lived service cannot accumulate every sweep's
#: graphs forever.
_MAX_CACHED_PAYLOADS = 16


def _run_one_cell(fn, payload_obj, worker_cache: dict, cell_wire: object,
                  index: int, ctx: Optional[tuple] = None) -> dict:
    """Execute one wire-encoded cell; never raises — worker bugs become
    structured per-cell error rows, so one bad cell cannot take down the
    stream (the distributed analogue of ``/batch``'s per-instance
    errors).

    With :mod:`repro.obs` active in the executing process the cell is
    timed; when the request also carried a trace context (``ctx``) the
    measured duration travels back in-band as an ``obs`` row key — extra
    keys are ignored by v2 consumers, and rows are never cached, so the
    wire stays compatible and results stay byte-identical.
    """
    st = obs.active()
    if st is None:
        try:
            cell = from_cell_wire(cell_wire)
            result = fn(payload_obj, worker_cache, cell)
            return {"i": index, "r": to_cell_wire(result)}
        except Exception as exc:  # noqa: BLE001 — must answer, not crash
            return {"i": index,
                    "error": {"type": "cell_error",
                              "message": f"{type(exc).__name__}: {exc}"}}
    t0 = time.perf_counter()
    try:
        cell = from_cell_wire(cell_wire)
        result = fn(payload_obj, worker_cache, cell)
        row = {"i": index, "r": to_cell_wire(result)}
    except Exception as exc:  # noqa: BLE001 — must answer, not crash
        row = {"i": index,
               "error": {"type": "cell_error",
                         "message": f"{type(exc).__name__}: {exc}"}}
    duration = time.perf_counter() - t0
    st.registry.histogram("memsched_cell_seconds",
                          mode="service").observe(duration)
    if ctx is not None:
        row["obs"] = {"dur": round(duration, 6), "pid": os.getpid()}
    return row


def _cells_unit(cache: dict, unit: tuple) -> list:
    """Execute one chunk of a ``/cells`` request (in-process or in a pool
    worker).  ``unit`` is ``("cells", worker_name, payload_digest,
    payload_wire, cell_wires, base_index)``, optionally extended with the
    request's trace context as a seventh element (see
    :func:`_run_one_cell`).

    The decoded payload and the worker's cell cache are memoised per
    process under the payload digest, so a sweep's graphs are decoded once
    per worker process — the remote analogue of shipping ``initargs`` once
    — and reference-run caching keeps working across chunks.
    """
    _, worker_name, pdigest, payload_wire, cell_wires, base = unit[:6]
    ctx = unit[6] if len(unit) > 6 else None
    try:
        from ..experiments.engine import get_remote_worker
        fn = get_remote_worker(worker_name)
        pkey = ("cells_payload", pdigest)
        try:
            payload_obj = cache[pkey]
        except KeyError:
            # The cache dict is shared between executor threads on a
            # workers<=1 host, so eviction uses pop() and the decoded
            # value is kept in a local — a concurrent evictor can only
            # cost a re-decode, never a crash.
            while sum(1 for k in cache if k[0] == "cells_payload") \
                    >= _MAX_CACHED_PAYLOADS:
                for k in list(cache):
                    if k[0] in ("cells_payload", "cells_cache"):
                        cache.pop(k, None)
                        break
            payload_obj = from_cell_wire(payload_wire)
            cache[pkey] = payload_obj
        worker_cache = cache.setdefault(("cells_cache", pdigest), {})
    except Exception as exc:  # noqa: BLE001 — per-cell structured errors
        err = {"type": "cell_error",
               "message": f"{type(exc).__name__}: {exc}"}
        return [{"i": base + k, "error": dict(err)}
                for k in range(len(cell_wires))]
    return [_run_one_cell(fn, payload_obj, worker_cache, cw, base + k, ctx)
            for k, cw in enumerate(cell_wires)]


def _service_worker(payload: object, cache: dict, unit: tuple):
    """The persistent pool's single entry point: dispatches ``/batch``
    instances and ``/cells`` chunks through one initializer, so both
    endpoints share the same warm worker processes."""
    if unit[0] == "batch":
        return _batch_worker(payload, cache, unit[1])
    if unit[0] == "cells":
        return _cells_unit(cache, unit)
    if unit[0] == "cells_kill":
        # An injected worker-process kill (repro.faults): the coordinator
        # tagged this dispatch, the worker dies with it.  SIGKILL-style —
        # no cleanup, the pool surfaces BrokenProcessPool.
        os._exit(137)
    raise ValueError(f"unknown pool unit kind {unit[0]!r}")


def _stop_pool(pool) -> None:
    """Shut a worker pool down without leaving orphans.

    ``shutdown(wait=False)`` alone is not enough after a worker death
    (injected or real): the broken executor's surviving siblings may
    never receive their exit sentinel and then outlive the service
    forever, pinned on the call-queue pipe — still holding every file
    descriptor they inherited at fork (client connections, stdout).  So
    after the polite shutdown, terminate whatever is provably still
    alive."""
    if pool is None:
        return
    procs = [p for p in getattr(pool, "_processes", {}).values()
             if p is not None]
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()


class ScheduleCache:
    """Thread-safe content-addressed LRU over serialized response bodies.

    With ``cache_dir`` the cache survives restarts: every mutation is
    appended to a JSONL journal (``put`` lines carry the body, ``touch``
    lines record recency boosts from hits), and a fresh instance replays
    the journal through the same LRU logic — the reloaded eviction order
    is exactly the live one, then the journal is compacted.  The digest
    scheme is restart-stable by design (sha256 of canonical JSON), so
    reloaded entries keep answering byte-identically.

    Durability/throughput trade-offs: ``put`` lines are flushed (a served
    cold response is never lost), ``touch`` lines are buffered (a crash
    loses at most some recency boosts, never entries), and the journal is
    compacted in place whenever it outgrows ``8 x capacity`` lines, so a
    hit-heavy service cannot grow it without bound.  The directory is
    guarded by an advisory ``flock`` so two services cannot corrupt one
    journal.
    """

    _JOURNAL = "cache.jsonl"
    _LOCKFILE = "cache.lock"

    def __init__(self, capacity: int = 1024,
                 cache_dir: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[str, bytes]" = OrderedDict()
        self._lock = threading.Lock()
        self._journal = None
        self._journal_path: Optional[Path] = None
        self._journal_lines = 0
        self._lockfile = None
        if cache_dir is not None:
            path = Path(cache_dir)
            path.mkdir(parents=True, exist_ok=True)
            self._acquire_dir_lock(path)
            self._journal_path = path / self._JOURNAL
            self._replay(self._journal_path)
            self._compact(self._journal_path)
            self._journal_lines = len(self._data)
            self._journal = self._journal_path.open("a", encoding="utf-8")

    def _acquire_dir_lock(self, path: Path) -> None:
        """Advisory single-writer lock on the cache directory: a second
        live service pointing at the same ``--cache-dir`` would compact
        the journal out from under this one's append handle.  The lock is
        released automatically when the process dies, so a crashed
        service never blocks the next start."""
        try:
            import fcntl
        except ImportError:      # pragma: no cover - non-POSIX fallback
            return
        self._lockfile = (path / self._LOCKFILE).open("a")
        try:
            fcntl.flock(self._lockfile, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            self._lockfile.close()
            self._lockfile = None
            raise ValueError(
                f"cache dir {path} is already in use by another running "
                f"service (flock on {self._LOCKFILE} held)") from None

    def _replay(self, journal_path: Path) -> None:
        """Rebuild the LRU from a journal; torn, corrupted (CRC-failing)
        or unparsable lines are skipped, order of the surviving ops is
        preserved.  Legacy checksum-less lines (pre-CRC journals) replay
        unchanged — :func:`repro.io.json_io.journal_decode` accepts
        both framings."""
        if not journal_path.exists():
            return
        with journal_path.open("r", encoding="utf-8") as fh:
            for line in fh:
                row = journal_decode(line)
                if row is None:
                    continue
                op = row.get("op")
                if op == "put" and isinstance(row.get("digest"), str) \
                        and isinstance(row.get("body"), str):
                    self._data[row["digest"]] = row["body"].encode("utf-8")
                    self._data.move_to_end(row["digest"])
                elif op == "touch":
                    if row.get("digest") in self._data:
                        self._data.move_to_end(row["digest"])
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def _compact(self, journal_path: Path) -> None:
        """Rewrite the journal as one put per live entry, LRU order —
        atomically (write-temp, fsync, rename), so a crash mid-compaction
        leaves the previous journal intact rather than half of one."""
        tmp = journal_path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for digest, body in self._data.items():
                fh.write(journal_encode(
                    {"op": "put", "digest": digest,
                     "body": body.decode("utf-8")}) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(journal_path)

    def _append(self, row: dict, flush: bool) -> None:
        # Callers hold self._lock, which also serialises journal writes.
        if self._journal is None:
            return
        line = journal_encode(row)
        injector = faults.active()
        if injector is not None and injector.fire(
                "journal.corrupt", injector.plan.corrupt,
                injector.plan.corrupt_limit):
            line = line[:max(1, len(line) // 2)]   # torn write
        self._journal.write(line + "\n")
        if flush:
            self._journal.flush()
        self._journal_lines += 1
        if self._journal_lines > max(1024, 8 * self.capacity):
            # Hit-heavy workloads append one touch line per request;
            # rewrite the journal in place before it grows without bound.
            self._journal.close()
            self._compact(self._journal_path)
            self._journal_lines = len(self._data)
            self._journal = self._journal_path.open("a", encoding="utf-8")

    def close(self) -> None:
        """Release the journal handle and directory lock (idempotent;
        no-op when in-memory)."""
        with self._lock:
            if self._journal is not None:
                self._journal.close()
                self._journal = None
            if self._lockfile is not None:
                self._lockfile.close()
                self._lockfile = None

    def __len__(self) -> int:
        return len(self._data)

    def get(self, digest: str) -> Optional[bytes]:
        with self._lock:
            body = self._data.get(digest)
            if body is None:
                self.misses += 1
                return None
            self._data.move_to_end(digest)
            # Unflushed: losing a recency boost in a crash is harmless.
            self._append({"op": "touch", "digest": digest}, flush=False)
            self.hits += 1
            return body

    def put(self, digest: str, body: bytes) -> None:
        with self._lock:
            if digest in self._data:
                self._data.move_to_end(digest)
                self._append({"op": "touch", "digest": digest}, flush=False)
                return  # identical by construction: same digest, same bytes
            self._data[digest] = body
            self._append({"op": "put", "digest": digest,
                          "body": body.decode("utf-8")}, flush=True)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "persistent": self._journal is not None,
            }


_JSON_HEADERS = {"Content-Type": "application/json"}


class _SessionEntry:
    """One named online session plus the lock that serializes it."""

    __slots__ = ("session", "lock", "created_at")

    def __init__(self, session: OnlineSession) -> None:
        self.session = session
        self.lock = threading.Lock()
        self.created_at = time.monotonic()


class ServiceApp:
    """Routes service requests; owns the cache and the worker count."""

    def __init__(self, workers: int = 1, cache_size: int = 1024,
                 cache_dir: Optional[str] = None, *,
                 pool_restarts: int = 2) -> None:
        self.workers = max(1, int(workers))
        self.cache = ScheduleCache(cache_size, cache_dir=cache_dir)
        self.started_at = time.monotonic()
        self.n_requests = 0
        self.n_cell_requests = 0
        self.n_cells = 0
        #: Supervised pool-restart budget per request: a worker-process
        #: death rebuilds the pool and retries up to this many times
        #: (with backoff) before the failure is surfaced to the client.
        self.pool_restarts = max(0, int(pool_restarts))
        self.n_pool_restarts = 0
        self._count_lock = threading.Lock()
        # Raw-body fast path: sha256 of the exact request bytes -> canonical
        # digest.  A byte-identical resubmission skips JSON parsing and
        # canonicalization entirely — for a 1000-task graph that is most of
        # the warm-path cost.  Differently-formatted but equivalent bodies
        # miss here and fall through to the canonical path (and still hit
        # the content-addressed cache).
        self._raw_index: "OrderedDict[bytes, str]" = OrderedDict()
        self._raw_lock = threading.Lock()
        # Persistent batch pool (lazy): an always-on service cannot afford
        # worker spawn + package import per /batch request.
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        # The workers<=1 /cells path's analogue of a pool worker's
        # per-process cache: decoded payloads + worker cell caches, keyed
        # by payload digest (see _cells_unit; bounded there).
        self._cells_local_cache: dict = {}
        # Online sessions (name -> _SessionEntry).  The outer lock only
        # guards the registry; each entry carries its own lock so rounds
        # in different sessions run concurrently while one session's
        # submissions serialize (OnlineSession is not thread-safe).
        self._sessions: dict[str, _SessionEntry] = {}
        self._sessions_lock = threading.Lock()

    def close(self) -> None:
        """Shut down the batch worker pool and the cache journal
        (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        _stop_pool(pool)
        self.cache.close()

    def _batch_pool(self) -> ProcessPoolExecutor:
        """The persistent worker pool, initialised with the same
        worker/payload pattern :func:`repro.experiments.engine.map_cells`
        uses — the dispatcher and payload never change, so one initializer
        call per worker process serves every ``/batch`` *and* ``/cells``
        request for the service's lifetime."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(_service_worker, None))
            return self._pool

    def _reset_pool(self) -> None:
        """Discard a broken worker pool (the next dispatch rebuilds it);
        unlike :meth:`close`, the cache journal stays open."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        _stop_pool(pool)

    def _note_pool_restart(self, attempt: int) -> None:
        """Account one supervised restart and back off before rebuilding
        (a host that kills workers instantly must not spin)."""
        with self._count_lock:
            self.n_pool_restarts += 1
        time.sleep(min(1.0, 0.05 * (2 ** (attempt - 1))))

    def _run_cells(self, cells: list) -> list:
        """Fan batch cells out (persistent pool) or run them in-process.

        A worker-process death (``BrokenProcessPool``) is supervised: the
        pool is rebuilt and the batch retried up to ``pool_restarts``
        times — batch cells are pure, so a retry produces identical
        bytes — before a structured 500 is surfaced.
        """
        if self.workers <= 1 or len(cells) <= 1:
            cache: dict = {}
            return [_batch_worker(None, cache, cell) for cell in cells]
        units = [("batch", cell) for cell in cells]
        attempt = 0
        while True:
            try:
                return list(self._batch_pool().map(
                    _call_cell, units,
                    chunksize=default_chunk_size(len(units), self.workers)))
            except BrokenProcessPool as exc:
                self._reset_pool()
                attempt += 1
                if attempt > self.pool_restarts:
                    raise ServiceError(
                        500, "worker_pool",
                        f"batch worker pool died ({exc}) and "
                        f"{self.pool_restarts} supervised restarts were "
                        f"exhausted; pool reset, retry the request"
                    ) from exc
                self._note_pool_restart(attempt)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle(self, method: str, path: str, body: bytes,
               ctx: Optional[tuple] = None) -> tuple[int, dict, bytes]:
        """Serve one request; returns ``(status, headers, body_bytes)``.

        Never raises for protocol-level problems — they become structured
        JSON error bodies — so the transport layer stays dumb.  ``ctx`` is
        the caller's trace context ``(trace_id, span_id)``, parsed from the
        ``X-Trace-Id``/``X-Span-Id`` headers by the transport (``None``
        when absent); it only annotates telemetry, never response bodies.
        """
        with self._count_lock:
            self.n_requests += 1
        path, _, query = path.partition("?")
        st = obs.active()
        if st is None:
            return self._route(method, path, query, body, ctx)
        if path in _KNOWN_ENDPOINTS:
            endpoint = path
        elif path.startswith("/jobs/"):
            endpoint = "/jobs"   # /jobs/{id} must not explode the label set
        else:
            endpoint = "other"
        inflight = st.registry.gauge("memsched_http_inflight_requests")
        inflight.inc()
        t0 = time.perf_counter()
        try:
            with obs.span("request", endpoint=endpoint):
                status, headers, out = self._route(method, path, query,
                                                   body, ctx)
        finally:
            inflight.dec()
        st.registry.histogram("memsched_http_request_seconds",
                              endpoint=endpoint).observe(
                                  time.perf_counter() - t0)
        st.registry.counter("memsched_http_requests_total",
                            endpoint=endpoint, status=str(status)).inc()
        return status, headers, out

    def _route(self, method: str, path: str, query: str, body: bytes,
               ctx: Optional[tuple]) -> tuple[int, dict, bytes]:
        try:
            if path == "/schedule":
                self._require(method, "POST", path)
                return self._handle_schedule(body)
            if path == "/batch":
                self._require(method, "POST", path)
                return self._handle_batch(body)
            if path == "/cells":
                self._require(method, "POST", path)
                return self._handle_cells(body, ctx)
            if path == "/jobs" or path.startswith("/jobs/"):
                return self._handle_jobs(method, path, query, body)
            if path == "/algorithms":
                self._require(method, "GET", path)
                return self._handle_algorithms()
            if path == "/healthz":
                self._require(method, "GET", path)
                return self._handle_healthz()
            if path == "/metrics":
                self._require(method, "GET", path)
                return self._handle_metrics()
            raise ServiceError(404, "not_found", f"unknown path {path!r}")
        except ServiceError as exc:
            return exc.status, dict(_JSON_HEADERS), exc.to_body()
        except Exception as exc:   # noqa: BLE001 — a bug must answer 500,
            # not tear the connection down (the transport only handles
            # socket errors, and a dropped socket makes the client retry).
            err = ServiceError(500, "internal",
                               f"{type(exc).__name__}: {exc}")
            return err.status, dict(_JSON_HEADERS), err.to_body()

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise ServiceError(405, "method_not_allowed",
                               f"{path} only accepts {expected}")

    @staticmethod
    def _parse_body(body: bytes) -> object:
        try:
            return json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(400, "bad_request",
                               f"invalid JSON body: {exc}") from exc

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def _handle_schedule(self, body: bytes) -> tuple[int, dict, bytes]:
        headers = dict(_JSON_HEADERS)
        raw_key = hashlib.sha256(body).digest()
        with self._raw_lock:
            digest = self._raw_index.get(raw_key)
            if digest is not None:
                self._raw_index.move_to_end(raw_key)
        parsed = None
        if digest is None:
            parsed = parse_request(self._parse_body(body))
            digest = request_digest(*parsed)
            with self._raw_lock:
                self._raw_index[raw_key] = digest
                while len(self._raw_index) > self.cache.capacity:
                    self._raw_index.popitem(last=False)
        cached = self.cache.get(digest)
        if cached is not None:
            headers["X-Cache"] = "hit"
            return 200, headers, cached
        if parsed is None:  # raw alias outlived the cached response
            parsed = parse_request(self._parse_body(body))
        out = execute_request(*parsed, digest)
        self.cache.put(digest, out)
        headers["X-Cache"] = "miss"
        return 200, headers, out

    def _handle_batch(self, body: bytes) -> tuple[int, dict, bytes]:
        payload = self._parse_body(body)
        if not isinstance(payload, dict) or "requests" not in payload:
            raise ServiceError(400, "bad_request",
                               "batch body must be {\"requests\": [...]}")
        requests = payload["requests"]
        if not isinstance(requests, list):
            raise ServiceError(400, "bad_request",
                               "'requests' must be an array")

        # Resolve each instance to either an error body, a cached body, or
        # a position in the unique-miss work list.
        results: list[Optional[bytes]] = [None] * len(requests)
        cached_flags = [False] * len(requests)
        miss_index: dict[str, int] = {}   # digest -> index into cells
        cells: list[tuple] = []
        slots: list[list[int]] = []       # cells[i] fills slots[i]
        for pos, req in enumerate(requests):
            try:
                graph_d, platform_d, algorithm, options = parse_request(req)
                digest = request_digest(graph_d, platform_d, algorithm,
                                        options)
            except ServiceError as exc:
                results[pos] = exc.to_body()
                continue
            hit = self.cache.get(digest)
            if hit is not None:
                results[pos] = hit
                cached_flags[pos] = True
                continue
            ci = miss_index.get(digest)
            if ci is None:
                ci = miss_index[digest] = len(cells)
                cells.append((graph_d, platform_d, algorithm, options, digest))
                slots.append([pos])
            else:
                slots[ci].append(pos)   # duplicate within the batch
                cached_flags[pos] = True

        if cells:
            outcomes = self._run_cells(cells)
            for cell, outcome, fills in zip(cells, outcomes, slots):
                if outcome[0] == "ok":
                    out = outcome[1]
                    self.cache.put(cell[4], out)
                else:
                    out = ServiceError(*outcome[1:]).to_body()
                for pos in fills:
                    results[pos] = out

        # Splice the per-instance bodies verbatim: each array element is
        # byte-identical to the corresponding /schedule response.
        joined = b",".join(results)  # type: ignore[arg-type]
        out_body = (b'{"cached":' + canonical_json(cached_flags).encode()
                    + b',"results":[' + joined + b"]}")
        return 200, dict(_JSON_HEADERS), out_body

    # ------------------------------------------------------------------
    # online sessions: POST /jobs, GET /jobs, GET /jobs/{id}
    # ------------------------------------------------------------------
    @staticmethod
    def _query_params(query: str) -> dict:
        return {k: v[-1] for k, v in parse_qs(query).items()}

    def _session_entry(self, name: str) -> _SessionEntry:
        with self._sessions_lock:
            entry = self._sessions.get(name)
        if entry is None:
            raise ServiceError(404, "unknown_session",
                               f"no online session named {name!r}")
        return entry

    def _ensure_session(self, name: str, payload: dict) -> _SessionEntry:
        """Get-or-create the named session; the first request fixes its
        platform/algorithm/policy, later requests may restate them but a
        conflicting restatement is a 409 (silent drift would make two
        clients disagree about what timeline they share)."""
        with self._sessions_lock:
            entry = self._sessions.get(name)
            if entry is not None:
                self._check_session_config(name, entry.session, payload)
                return entry
            platform_d = payload.get("platform")
            if not isinstance(platform_d, dict):
                raise ServiceError(
                    400, "bad_request",
                    f"the first request for session {name!r} must carry "
                    f"'platform'")
            try:
                platform = platform_from_dict(platform_d)
            except (KeyError, TypeError, ValueError) as exc:
                raise ServiceError(400, "bad_platform",
                                   f"invalid platform: {exc}") from exc
            options = payload.get("options") or {}
            if not isinstance(options, dict):
                raise ServiceError(400, "bad_request",
                                   "'options' must be an object")
            comm_policy = options.get("comm_policy", "late")
            if comm_policy not in ("late", "eager"):
                raise ServiceError(
                    400, "bad_request",
                    f"options.comm_policy must be 'late' or 'eager', "
                    f"got {comm_policy!r}")
            try:
                session = OnlineSession(
                    platform,
                    algorithm=payload.get("algorithm", "memheft"),
                    policy=payload.get("policy", "immediate"),
                    comm_policy=comm_policy)
            except ValueError as exc:
                raise ServiceError(400, "bad_request", str(exc)) from exc
            entry = self._sessions[name] = _SessionEntry(session)
            return entry

    @staticmethod
    def _check_session_config(name: str, session: OnlineSession,
                              payload: dict) -> None:
        stated = {
            "algorithm": (payload.get("algorithm"), session.algorithm),
            "policy": (payload.get("policy"), session.policy.name),
        }
        options = payload.get("options")
        if isinstance(options, dict) and "comm_policy" in options:
            stated["options.comm_policy"] = (options["comm_policy"],
                                             session.comm_policy)
        if isinstance(payload.get("platform"), dict):
            stated["platform"] = (payload["platform"],
                                  platform_to_dict(session.platform))
        for key, (got, have) in stated.items():
            if got is not None and got != have:
                raise ServiceError(
                    409, "session_mismatch",
                    f"session {name!r} runs with {key}={have!r}; this "
                    f"request restates {key}={got!r}")

    def _handle_jobs(self, method: str, path: str, query: str,
                     body: bytes) -> tuple[int, dict, bytes]:
        if path == "/jobs" and method == "POST":
            return self._jobs_submit(body)
        self._require(method, "GET", path)
        name = self._query_params(query).get("session", "default")
        entry = self._session_entry(name)
        if path == "/jobs":
            with entry.lock:
                out = {"session": name,
                       "summary": entry.session.summary(),
                       "journal": entry.session.journal()}
            return 200, dict(_JSON_HEADERS), canonical_json(out).encode()
        job_id = path[len("/jobs/"):]
        with entry.lock:
            job = entry.session.jobs.get(job_id)
            out = None if job is None else dict(job.to_dict(), session=name)
        if out is None:
            raise ServiceError(404, "unknown_job",
                               f"session {name!r} has no job {job_id!r}")
        return 200, dict(_JSON_HEADERS), canonical_json(out).encode()

    def _jobs_submit(self, body: bytes) -> tuple[int, dict, bytes]:
        payload = self._parse_body(body)
        if not isinstance(payload, dict):
            raise ServiceError(400, "bad_request",
                               "/jobs body must be a JSON object")
        name = payload.get("session", "default")
        if not isinstance(name, str) or not name:
            raise ServiceError(400, "bad_request",
                               "'session' must be a non-empty string")
        release = payload.get("release_time", payload.get("release", 0.0))
        if isinstance(release, bool) or not isinstance(release, (int, float)):
            raise ServiceError(400, "bad_request",
                               "'release_time' must be a number")
        graph_d = payload.get("graph")
        if not isinstance(graph_d, dict):
            raise ServiceError(400, "bad_request",
                               "'graph' must be a graph object")
        try:
            graph = graph_from_dict(graph_d)
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(400, "bad_graph",
                               f"invalid graph: {exc}") from exc
        entry = self._ensure_session(name, payload)
        with entry.lock:
            session = entry.session
            try:
                job_id = session.submit(graph, release=float(release),
                                        job_id=payload.get("job_id"))
                planned = session.poll(float(release))
                if payload.get("flush"):
                    planned += session.flush()
            except InfeasibleScheduleError as exc:
                raise ServiceError(422, "infeasible", str(exc)) from exc
            except ValueError as exc:
                raise ServiceError(400, "bad_request", str(exc)) from exc
            job = session.jobs[job_id]
            out = {
                "session": name,
                "job_id": job_id,
                "arrival_index": job.arrival_index,
                "state": job.state,
                "planned": planned,
                "decision_ms": job.decision_ms,
                "n_pending": session.n_pending,
                "makespan": session.makespan,
            }
        return 200, dict(_JSON_HEADERS), canonical_json(out).encode("utf-8")

    def _handle_cells(self, body: bytes, ctx: Optional[tuple] = None):
        """``POST /cells`` — execute a chunk of registered experiment cell
        functions, streaming one NDJSON row per cell.

        The request is ``{"worker": name, "payload": wire, "cells":
        [wire, ...]}`` (see :func:`repro.io.json_io.to_cell_wire`); the
        response body is ``application/x-ndjson``: per cell either
        ``{"i": k, "r": wire}`` or ``{"i": k, "error": {...}}``, closed by
        a ``{"done": n}`` sentinel.  Rows are produced lazily — chunked
        transfer on the wire — so a coordinator sees results as they
        complete, and a host crash mid-request truncates the stream
        (detectably: no sentinel) instead of hanging the caller.

        Validation (unknown worker, malformed wire values) happens
        eagerly, *before* the 200 status is committed; per-cell worker
        exceptions travel as structured error rows.  With ``workers > 1``
        the cells are fanned over the same persistent process pool as
        ``/batch``.
        """
        payload = self._parse_body(body)
        if not isinstance(payload, dict):
            raise ServiceError(400, "bad_request",
                               "cells body must be a JSON object")
        worker_name = payload.get("worker")
        if not isinstance(worker_name, str):
            raise ServiceError(400, "bad_request",
                               "'worker' must be a registered worker name")
        cell_wires = payload.get("cells")
        if not isinstance(cell_wires, list):
            raise ServiceError(400, "bad_request",
                               "'cells' must be an array of wire values")
        from ..experiments.engine import get_remote_worker
        try:
            fn = get_remote_worker(worker_name)
        except ValueError as exc:
            raise ServiceError(404, "unknown_worker", str(exc)) from exc
        payload_wire = payload.get("payload")
        pdigest = hashlib.sha256(
            canonical_json(payload_wire).encode("utf-8")).hexdigest()
        try:   # reject malformed wire values before committing a 200
            payload_obj = from_cell_wire(payload_wire)
            for cw in cell_wires:
                from_cell_wire(cw)
        except (ValueError, TypeError, KeyError) as exc:
            raise ServiceError(400, "bad_request",
                               f"malformed cell wire value: {exc}") from exc
        if self.workers <= 1:
            # Seed the in-process unit cache with the payload we just
            # decoded for validation, so the serial path never decodes
            # it twice — and, like a pool worker's cache, keeps it (plus
            # the worker's cell cache) warm across requests: a 1-worker
            # fleet host serves many small chunks per sweep.
            self._cells_local_cache.setdefault(
                ("cells_payload", pdigest), payload_obj)
        with self._count_lock:
            self.n_cell_requests += 1
            self.n_cells += len(cell_wires)
        headers = {"Content-Type": "application/x-ndjson",
                   "X-Cells": str(len(cell_wires))}
        return 200, headers, self._cells_stream(
            worker_name, payload_wire, pdigest, cell_wires, ctx)

    @staticmethod
    def _tag_kills(units: list) -> list:
        """Ask the active fault injector, per dispatch attempt, which
        units take a worker-process kill with them.  Tagging happens in
        the app process (which owns the injector's deterministic
        counters), per *attempt* — a retried unit draws again, so an
        exhausted ``kill_limit`` naturally stops re-killing."""
        injector = faults.active()
        if injector is None:
            return units
        plan = injector.plan
        return [("cells_kill",) + unit[1:]
                if injector.fire("worker.kill", plan.kill, plan.kill_limit)
                else unit
                for unit in units]

    def _unit_rows(self, units: list):
        """Yield the per-cell rows of one ``/cells`` request, unit by
        unit, surviving injected worker kills.

        ``workers <= 1`` runs in-process — there a worker kill *is* a
        host kill (``os._exit``), the blackout scenario the distributed
        executor's circuit breaker exists for.  The pool path supervises
        ``BrokenProcessPool``: rebuild, back off, and resume from the
        first unit whose rows were not fully yielded (cells are pure, so
        the retried unit reproduces identical rows).
        """
        st = obs.active()
        depth = (st.registry.gauge("memsched_cells_queue_depth")
                 if st is not None else None)
        if depth is not None:
            depth.inc(len(units))
        if self.workers <= 1:
            for unit in self._tag_kills(units):
                if unit[0] == "cells_kill":
                    os._exit(137)   # workers<=1: worker kill == host kill
                for row in _cells_unit(self._cells_local_cache, unit):
                    yield row
                if depth is not None:
                    depth.dec()
            return
        done = 0
        attempt = 0
        while done < len(units):
            pending = self._tag_kills(units[done:])
            try:
                for rows in self._batch_pool().map(_call_cell, pending,
                                                   chunksize=1):
                    for row in rows:
                        yield row
                    done += 1   # only after the unit's rows fully yielded
                    if depth is not None:
                        depth.dec()
            except BrokenProcessPool:
                self._reset_pool()
                attempt += 1
                if attempt > self.pool_restarts:
                    if depth is not None:
                        depth.dec(len(units) - done)
                    raise   # transport aborts the stream (no sentinel)
                self._note_pool_restart(attempt)

    def _cells_stream(self, worker_name: str, payload_wire: object,
                      pdigest: str, cell_wires: list,
                      ctx: Optional[tuple] = None):
        """Generator of NDJSON lines for one ``/cells`` request (consumed
        by the transport's chunked writer).  Both branches run the same
        :func:`_cells_unit` chunks — in-process against the app-held
        cache, or over the persistent pool against each worker's."""
        def encode(row: dict) -> bytes:
            return json.dumps(row, sort_keys=True).encode("utf-8") + b"\n"

        n = len(cell_wires)
        size = default_chunk_size(n, max(1, self.workers))
        units = [("cells", worker_name, pdigest, payload_wire,
                  cell_wires[k:k + size], k) for k in range(0, n, size)]
        if ctx is not None:
            units = [unit + (ctx,) for unit in units]
        injector = faults.active()
        trunc_at = None
        if injector is not None and n > 0 and injector.fire(
                "stream.truncate", injector.plan.truncate,
                injector.plan.truncate_limit):
            trunc_at = injector.pick("stream.truncate.row", n)
        emitted = 0
        for row in self._unit_rows(units):
            line = encode(row)
            if trunc_at is not None and emitted == trunc_at:
                # Injected mid-stream death: half a row on the wire, then
                # the producer "crashes" — the transport drops the
                # connection without the terminal chunk, exactly like a
                # real host loss mid-request.
                yield line[:max(1, len(line) // 2)]
                raise RuntimeError("injected /cells stream truncation")
            emitted += 1
            yield line
        yield encode({"done": n})

    def _handle_algorithms(self) -> tuple[int, dict, bytes]:
        algos = [
            {
                "name": name,
                "memory_aware": name not in MEMORY_OBLIVIOUS,
                "baseline": name in MEMORY_OBLIVIOUS,
                "options": sorted(_DEFAULT_OPTIONS) if name in _OPTIONED else [],
            }
            for name in sorted(SCHEDULERS)
        ]
        body = canonical_json({"algorithms": algos}).encode("utf-8")
        return 200, dict(_JSON_HEADERS), body

    def _synthesized_registry(self) -> MetricsRegistry:
        """Build a fresh registry mirroring the app's operational counters
        (which predate :mod:`repro.obs` and stay authoritative) so every
        scrape reflects them without double-accounting."""
        reg = MetricsRegistry()
        reg.gauge(
            "memsched_uptime_seconds",
            _help="Seconds since the service app was constructed.",
        ).set(time.monotonic() - self.started_at)
        reg.gauge("memsched_workers",
                  _help="Configured worker-process count.").set(self.workers)
        with self._count_lock:
            n_requests = self.n_requests
            n_cell_requests = self.n_cell_requests
            n_cells = self.n_cells
            n_pool_restarts = self.n_pool_restarts
        reg.counter("memsched_requests_total",
                    _help="HTTP requests handled (any endpoint)."
                    ).inc(n_requests)
        reg.counter("memsched_cell_requests_total",
                    _help="POST /cells requests handled."
                    ).inc(n_cell_requests)
        reg.counter("memsched_cells_executed_total",
                    _help="Experiment cells accepted for execution."
                    ).inc(n_cells)
        reg.counter("memsched_pool_restarts_total",
                    _help="Supervised worker-pool rebuilds."
                    ).inc(n_pool_restarts)
        cache = self.cache.stats()
        reg.counter("memsched_cache_hits_total",
                    _help="Schedule-cache hits.").inc(cache["hits"])
        reg.counter("memsched_cache_misses_total",
                    _help="Schedule-cache misses.").inc(cache["misses"])
        reg.counter("memsched_cache_evictions_total",
                    _help="Schedule-cache LRU evictions."
                    ).inc(cache["evictions"])
        reg.gauge("memsched_cache_size",
                  _help="Schedule-cache entries.").set(cache["size"])
        reg.gauge("memsched_cache_capacity",
                  _help="Schedule-cache capacity.").set(cache["capacity"])
        injector = faults.active()
        if injector is not None:
            for site, c in sorted(injector.summary()["sites"].items()):
                reg.counter("memsched_fault_draws_total",
                            _help="Fault-injector Bernoulli draws per site.",
                            site=site).inc(c["draws"])
                reg.counter("memsched_fault_fired_total",
                            _help="Fault-injector faults fired per site.",
                            site=site).inc(c["fired"])
        return reg

    def _handle_metrics(self) -> tuple[int, dict, bytes]:
        """``GET /metrics`` — Prometheus text exposition (format 0.0.4).

        Operational counters are synthesized per scrape from the app's own
        accounting; when :mod:`repro.obs` is active the process-wide
        registry (scheduler/kernel/request instrumentation) is appended.
        """
        text = self._synthesized_registry().render()
        st = obs.active()
        if st is not None:
            text += st.registry.render()
        headers = {"Content-Type":
                   "text/plain; version=0.0.4; charset=utf-8"}
        return 200, headers, text.encode("utf-8")

    def _metrics_summary(self) -> dict:
        with self._count_lock:
            n_requests = self.n_requests
            n_cell_requests = self.n_cell_requests
            n_cells = self.n_cells
            n_pool_restarts = self.n_pool_restarts
        cache = self.cache.stats()
        lookups = cache["hits"] + cache["misses"]
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "requests": n_requests,
            "cell_requests": n_cell_requests,
            "cells_executed": n_cells,
            "pool_restarts": n_pool_restarts,
            "cache_hit_rate": (round(cache["hits"] / lookups, 4)
                               if lookups else None),
            "observability": obs.active() is not None,
        }

    def _sessions_summary(self) -> dict:
        """Monitoring view of the online sessions (len() reads under the
        GIL are safe without the per-session locks; the numbers are a
        snapshot, not a transaction)."""
        with self._sessions_lock:
            entries = list(self._sessions.values())
        return {
            "count": len(entries),
            "jobs": sum(len(e.session.jobs) for e in entries),
            "pending": sum(e.session.n_pending for e in entries),
        }

    def _handle_healthz(self) -> tuple[int, dict, bytes]:
        health = {
            "status": "ok",
            "protocol": PROTOCOL_VERSION,
            "digest_schema": DIGEST_SCHEMA_VERSION,
            "cell_wire": CELL_WIRE_VERSION,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "n_requests": self.n_requests,
            "workers": self.workers,
            "cells": {"requests": self.n_cell_requests,
                      "executed": self.n_cells},
            "pool_restarts": self.n_pool_restarts,
            "cache": self.cache.stats(),
            "metrics_summary": self._metrics_summary(),
            # Which EST kernel backend serves requests on this interpreter
            # (operators can tell a degraded numpy/scalar fallback from the
            # compiled fast path at a glance).
            "kernel": {"active": resolve_backend(None).name,
                       "available": list(available_backends())},
            "sessions": self._sessions_summary(),
        }
        injector = faults.active()
        if injector is not None:
            health["faults"] = injector.summary()
        body = canonical_json(health).encode("utf-8")
        return 200, dict(_JSON_HEADERS), body
