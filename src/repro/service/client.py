"""Blocking keep-alive client for the scheduling service.

Built on :mod:`http.client` (stdlib-only, like the server).  One
:class:`ServiceClient` holds one persistent connection, so a submit loop
pays the TCP handshake once; it is *not* thread-safe — give each client
thread its own instance (the concurrency tests and the load generator do).

Graphs and platforms are accepted either as model objects
(:class:`~repro.core.graph.TaskGraph` / :class:`~repro.core.platform.Platform`)
or as already-serialized dicts; responses come back as
:class:`ScheduleResponse`, with the raw body bytes kept for byte-level
identity checks.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union
from urllib.parse import quote

from .. import faults, obs
from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..io.json_io import (
    graph_to_dict,
    platform_to_dict,
    schedule_from_dict,
)

GraphLike = Union[TaskGraph, dict]
PlatformLike = Union[Platform, dict]


class ServiceClientError(RuntimeError):
    """An error response from the service (or a transport failure).

    ``status`` is the HTTP status (0 for transport failures), ``err_type``
    the machine-readable slug from the error body.  ``retry_after`` carries
    the server's ``Retry-After`` hint in seconds (load shedding), or
    ``None`` — callers doing their own backoff should floor it.
    """

    def __init__(self, status: int, err_type: str, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(f"[{status}/{err_type}] {message}")
        self.status = status
        self.err_type = err_type
        self.message = message
        self.retry_after = retry_after


def _retry_after_of(headers: dict) -> Optional[float]:
    """The Retry-After header in seconds, if present and numeric."""
    for key, value in headers.items():
        if key.lower() == "retry-after":
            try:
                return max(0.0, float(value))
            except (TypeError, ValueError):
                return None
    return None


@dataclass
class ScheduleResponse:
    """One scheduling result, parsed; ``raw`` is the exact body."""

    digest: str
    algorithm: str
    makespan: float
    peaks: list
    schedule: dict
    cached: Optional[bool] = None   # None inside /batch results
    raw: bytes = field(default=b"", repr=False)

    @classmethod
    def from_dict(cls, data: dict, *, cached: Optional[bool] = None,
                  raw: bytes = b"") -> "ScheduleResponse":
        return cls(digest=data["digest"], algorithm=data["algorithm"],
                   makespan=data["makespan"], peaks=data["peaks"],
                   schedule=data["schedule"], cached=cached, raw=raw)

    def to_schedule(self) -> Schedule:
        """Materialise the placement as a :class:`Schedule` object."""
        return schedule_from_dict(self.schedule)


def build_request(graph: GraphLike, platform: PlatformLike,
                  algorithm: str = "memheft",
                  options: Optional[dict] = None) -> dict:
    """The wire form of one scheduling request."""
    req = {
        "graph": graph_to_dict(graph) if isinstance(graph, TaskGraph) else graph,
        "platform": (platform_to_dict(platform)
                     if isinstance(platform, Platform) else platform),
        "algorithm": algorithm,
    }
    if options:
        req["options"] = options
    return req


class ServiceClient:
    """Talks to one ``memsched serve`` endpoint over a kept-alive socket."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8123,
                 timeout: float = 60.0,
                 deadline: Optional[float] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        # Per-request wall-clock budget: advertised to the server as
        # X-Deadline-Ms (it sheds requests it cannot start in time) and
        # enforced client-side across an entire /cells stream, which the
        # per-read socket ``timeout`` alone cannot bound.
        self.deadline = deadline
        self._conn: Optional[http.client.HTTPConnection] = None

    def _headers(self) -> dict:
        headers = {"Content-Type": "application/json"}
        if self.deadline is not None:
            headers["X-Deadline-Ms"] = str(int(self.deadline * 1000))
        ctx = obs.trace_context()
        if ctx is not None:
            trace_id, span_id = ctx
            headers["X-Trace-Id"] = trace_id
            if span_id is not None:
                headers["X-Span-Id"] = span_id
        return headers

    @staticmethod
    def _injected_drop(site: str) -> bool:
        injector = faults.active()
        return injector is not None and injector.fire(
            site, injector.plan.client_drop,
            injector.plan.client_drop_limit)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None
                 ) -> tuple[int, dict, bytes]:
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        while True:
            if self._injected_drop("client.drop"):
                self.close()
                raise ServiceClientError(
                    0, "transport",
                    f"injected client-side connection drop to "
                    f"{self.host}:{self.port}")
            reused = self._conn is not None
            conn = self._connection()
            try:
                conn.request(method, path, body=body,
                             headers=self._headers())
                resp = conn.getresponse()
                data = resp.read()
                return resp.status, dict(resp.getheaders()), data
            except socket.timeout as exc:
                # Never resubmit on a timeout: the server may still be
                # computing the (expensive) answer — a blind retry would
                # double the work without coalescing.
                self.close()
                raise ServiceClientError(
                    0, "timeout",
                    f"no response from {self.host}:{self.port} within "
                    f"{self.timeout:g}s") from exc
            except (http.client.HTTPException, ConnectionError,
                    OSError) as exc:
                self.close()
                # Retry exactly once, and only when a *reused* keep-alive
                # socket failed (the server idled it out between requests);
                # a fresh connection failing means the service is down.
                if not reused:
                    raise ServiceClientError(
                        0, "transport",
                        f"cannot reach service at "
                        f"{self.host}:{self.port}: {exc}") from exc

    @staticmethod
    def _parse(status: int, body: bytes,
               headers: Optional[dict] = None) -> dict:
        try:
            data = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ServiceClientError(
                status, "transport",
                f"non-JSON response: {body[:200]!r}") from exc
        if status != 200:
            err = data.get("error", {}) if isinstance(data, dict) else {}
            raise ServiceClientError(
                status, err.get("type", "unknown"),
                err.get("message", body.decode(errors="replace")),
                retry_after=_retry_after_of(headers or {}))
        return data

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def schedule(self, graph: GraphLike, platform: PlatformLike,
                 algorithm: str = "memheft",
                 options: Optional[dict] = None) -> ScheduleResponse:
        """Schedule one instance; ``.cached`` reports the X-Cache verdict."""
        status, headers, body = self._request(
            "POST", "/schedule",
            build_request(graph, platform, algorithm, options))
        data = self._parse(status, body, headers)
        cached = {"hit": True, "miss": False}.get(
            {k.lower(): v for k, v in headers.items()}.get("x-cache", ""))
        return ScheduleResponse.from_dict(data, cached=cached, raw=body)

    def batch(self, requests: Sequence[Union[dict, tuple]]
              ) -> list[Union[ScheduleResponse, ServiceClientError]]:
        """Schedule many instances in one round trip.

        ``requests`` holds wire dicts (see :func:`build_request`) or
        ``(graph, platform, algorithm[, options])`` tuples.  Returns one
        entry per request, position-aligned: a :class:`ScheduleResponse`,
        or a :class:`ServiceClientError` (not raised) for instances the
        service rejected.
        """
        wire = [req if isinstance(req, dict) else build_request(*req)
                for req in requests]
        status, headers, body = self._request(
            "POST", "/batch", {"requests": wire})
        data = self._parse(status, body, headers)
        out: list[Union[ScheduleResponse, ServiceClientError]] = []
        for item, cached in zip(data["results"], data["cached"]):
            if "error" in item:
                err = item["error"]
                out.append(ServiceClientError(err.get("status", 400),
                                              err.get("type", "unknown"),
                                              err.get("message", "")))
            else:
                out.append(ScheduleResponse.from_dict(item, cached=cached))
        return out

    def run_cells(self, worker: str, payload_wire: object,
                  cell_wires: Sequence[object]) -> list[dict]:
        """Execute a chunk of experiment cells on this host (``POST
        /cells``) and collect the streamed per-cell rows.

        ``worker`` is a registered cell-worker name; ``payload_wire`` and
        ``cell_wires`` are already wire-encoded
        (:func:`repro.io.json_io.to_cell_wire`).  Returns the row dicts in
        stream order — ``{"i": k, "r": wire}`` or ``{"i": k, "error":
        {...}}`` — after verifying the ``{"done": n}`` sentinel, so a
        truncated stream (host died mid-request) surfaces as a
        :class:`ServiceClientError` with status 0 rather than silently
        missing cells.  4xx/5xx responses raise with the server's
        structured error.
        """
        body = json.dumps({"worker": worker, "payload": payload_wire,
                           "cells": list(cell_wires)}).encode("utf-8")
        expires = (time.monotonic() + self.deadline
                   if self.deadline is not None else None)
        while True:
            if self._injected_drop("client.drop"):
                self.close()
                raise ServiceClientError(
                    0, "transport",
                    f"injected client-side connection drop to "
                    f"{self.host}:{self.port}")
            reused = self._conn is not None
            conn = self._connection()
            try:
                conn.request("POST", "/cells", body=body,
                             headers=self._headers())
                resp = conn.getresponse()
                break
            except socket.timeout as exc:
                self.close()
                raise ServiceClientError(
                    0, "timeout",
                    f"no response from {self.host}:{self.port} within "
                    f"{self.timeout:g}s") from exc
            except (http.client.HTTPException, ConnectionError,
                    OSError) as exc:
                self.close()
                if not reused:   # same retry policy as _request
                    raise ServiceClientError(
                        0, "transport",
                        f"cannot reach service at "
                        f"{self.host}:{self.port}: {exc}") from exc
        if resp.status != 200:
            headers = dict(resp.getheaders())
            data = resp.read()
            self._parse(resp.status, data, headers)   # raises with the body
            self.close()
            raise ServiceClientError(resp.status, "transport",
                                     "unexpected non-error body")
        rows: list[dict] = []
        try:
            while True:
                if expires is not None and time.monotonic() > expires:
                    raise ServiceClientError(
                        0, "deadline",
                        f"/cells stream from {self.host}:{self.port} "
                        f"exceeded the {self.deadline:g}s deadline after "
                        f"{len(rows)} rows")
                line = resp.readline()
                if not line:
                    raise ServiceClientError(
                        0, "truncated",
                        f"/cells stream from {self.host}:{self.port} "
                        f"ended after {len(rows)} rows (no sentinel)")
                row = json.loads(line)
                if not isinstance(row, dict):
                    raise ServiceClientError(
                        0, "malformed",
                        f"non-object row in /cells stream: {line[:120]!r}")
                if "done" in row:
                    if row["done"] != len(rows):
                        raise ServiceClientError(
                            0, "malformed",
                            f"/cells sentinel says {row['done']} rows, "
                            f"got {len(rows)}")
                    trailing = resp.read()
                    if trailing:
                        raise ServiceClientError(
                            0, "malformed",
                            f"data after /cells sentinel: "
                            f"{trailing[:120]!r}")
                    return rows
                rows.append(row)
        except ServiceClientError:
            self.close()   # stream state unknown: drop the socket
            raise
        except socket.timeout as exc:
            self.close()
            raise ServiceClientError(
                0, "timeout",
                f"/cells stream from {self.host}:{self.port} stalled "
                f"beyond {self.timeout:g}s") from exc
        except json.JSONDecodeError as exc:
            self.close()
            raise ServiceClientError(
                0, "malformed",
                f"invalid NDJSON in /cells stream: {exc}") from exc
        except (http.client.HTTPException, ConnectionError, OSError) as exc:
            self.close()
            raise ServiceClientError(
                0, "transport",
                f"/cells stream from {self.host}:{self.port} broke: "
                f"{exc}") from exc

    def submit_job(self, graph: GraphLike, *, session: str = "default",
                   release: float = 0.0, job_id: Optional[str] = None,
                   platform: Optional[PlatformLike] = None,
                   algorithm: Optional[str] = None,
                   policy: Optional[str] = None,
                   options: Optional[dict] = None,
                   flush: bool = False) -> dict:
        """``POST /jobs`` — submit one graph into a named online session.

        The first submission for a session must carry ``platform`` (and
        may set ``algorithm``/``policy``/``options``); later submissions
        inherit the session's configuration and a conflicting
        restatement raises a 409.  Returns the wire dict: ``job_id``,
        ``arrival_index``, ``state``, the ids ``planned`` by this call,
        ``decision_ms``, ``n_pending`` and the session ``makespan``.
        """
        payload: dict = {"session": session, "release_time": release,
                         "graph": (graph if isinstance(graph, dict)
                                   else graph_to_dict(graph))}
        if job_id is not None:
            payload["job_id"] = job_id
        if platform is not None:
            payload["platform"] = (platform if isinstance(platform, dict)
                                   else platform_to_dict(platform))
        if algorithm is not None:
            payload["algorithm"] = algorithm
        if policy is not None:
            payload["policy"] = policy
        if options is not None:
            payload["options"] = options
        if flush:
            payload["flush"] = True
        status, headers, body = self._request("POST", "/jobs", payload)
        return self._parse(status, body, headers)

    def get_job(self, job_id: str, *, session: str = "default") -> dict:
        """``GET /jobs/{id}`` — one job's state and placements."""
        status, headers, body = self._request(
            "GET", f"/jobs/{quote(job_id)}?session={quote(session)}")
        return self._parse(status, body, headers)

    def session_info(self, session: str = "default") -> dict:
        """``GET /jobs`` — session summary plus its decision journal
        (canonical JSONL under the ``"journal"`` key, byte-comparable
        across replays of the same trace)."""
        status, headers, body = self._request(
            "GET", f"/jobs?session={quote(session)}")
        return self._parse(status, body, headers)

    def algorithms(self) -> list[dict]:
        status, headers, body = self._request("GET", "/algorithms")
        return self._parse(status, body, headers)["algorithms"]

    def healthz(self) -> dict:
        status, headers, body = self._request("GET", "/healthz")
        return self._parse(status, body, headers)

    def metrics(self) -> str:
        """The raw ``GET /metrics`` Prometheus text exposition."""
        status, headers, body = self._request("GET", "/metrics")
        if status != 200:
            self._parse(status, body, headers)   # raises structured error
        return body.decode("utf-8")

    def wait_until_ready(self, timeout: float = 10.0,
                         interval: float = 0.05) -> dict:
        """Poll ``/healthz`` until the service answers (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServiceClientError as exc:
                if time.monotonic() >= deadline:
                    raise ServiceClientError(
                        0, "timeout",
                        f"service at {self.host}:{self.port} not ready "
                        f"after {timeout:g}s: {exc.message}") from exc
                time.sleep(interval)
