"""Asyncio HTTP/1.1 transport for the scheduling service.

Deliberately dependency-free: a small hand-rolled HTTP server over
``asyncio.start_server`` (the container ships no web framework, and the
protocol needs only a handful of routes).  Connections are keep-alive;
scheduling work runs in the event loop's default thread-pool executor so
slow cold paths never block health checks or other clients, and ``/batch``
additionally fans cache misses out over a process pool (see
:mod:`repro.service.app`).  Responses are written with a Content-Length,
except bodies the app produces lazily (``POST /cells`` NDJSON rows) which
go out with chunked transfer encoding as each cell completes.

Three ways to run it::

    memsched serve --port 8123 --workers 4          # CLI, blocking
    asyncio.run(ServiceServer(app).serve_forever()) # embed in a loop
    with ThreadedServer() as srv: ...               # tests / benchmarks
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from typing import Optional

from .. import faults
from ..obs import log
from .app import ServiceApp

#: Reject absurd request heads / bodies instead of buffering them.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 256 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequest(Exception):
    """Malformed HTTP framing (not JSON-level errors): answer and close."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _render_head(status: int, headers: dict, keep_alive: bool, *,
                 length: Optional[int] = None) -> bytes:
    """The status line + headers; ``length=None`` means a chunked
    (streamed) body."""
    lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Error')}"]
    out_headers = dict(headers)
    out_headers.setdefault("Content-Type", "application/json")
    if length is None:
        out_headers["Transfer-Encoding"] = "chunked"
    else:
        out_headers["Content-Length"] = str(length)
    out_headers["Connection"] = "keep-alive" if keep_alive else "close"
    lines.extend(f"{k}: {v}" for k, v in out_headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def _render(status: int, headers: dict, body: bytes,
            keep_alive: bool) -> bytes:
    return _render_head(status, headers, keep_alive,
                        length=len(body)) + body


class ServiceServer:
    """The asyncio server; binds lazily so ``port=0`` (ephemeral) works.

    Two hardening knobs for real traffic:

    * ``max_connections`` — concurrent-connection cap.  A connection
      accepted beyond the cap is answered with a single ``503`` JSON error
      and closed, instead of letting unbounded keep-alive sockets pile up
      behind a slow executor.
    * ``idle_timeout`` — seconds a keep-alive connection may sit between
      requests.  An idle socket is closed silently (the standard server
      behaviour clients' retry-on-reused-socket logic expects — the
      bundled :class:`~repro.service.client.ServiceClient` reconnects
      transparently).
    """

    def __init__(self, app: Optional[ServiceApp] = None,
                 host: str = "127.0.0.1", port: int = 0, *,
                 max_connections: Optional[int] = None,
                 idle_timeout: Optional[float] = None) -> None:
        if max_connections is not None and max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be > 0 seconds")
        self.app = app if app is not None else ServiceApp()
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.idle_timeout = idle_timeout
        #: Connections answered 503 because the cap was hit (diagnostics).
        self.n_rejected = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set[asyncio.Task] = set()

    async def start(self) -> None:
        """Bind and start accepting; updates ``self.port`` when ephemeral."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Cancel idle keep-alive connections so the loop can close cleanly.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.app.close()   # release the /batch worker pool

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.aclose()

    # ------------------------------------------------------------------
    # one connection = a sequence of keep-alive requests
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        self._conn_tasks.add(asyncio.current_task())
        try:
            if (self.max_connections is not None
                    and len(self._conn_tasks) > self.max_connections):
                # Saturated: answer one structured 503 and close, so the
                # client sees a retryable condition instead of a hang.
                self.n_rejected += 1
                log.warning("service.saturated",
                            limit=self.max_connections,
                            rejected=self.n_rejected)
                err = json.dumps({"error": {
                    "status": 503, "type": "saturated",
                    "message": f"connection limit ({self.max_connections}) "
                               f"reached; retry later"}})
                # Retry-After tells well-behaved clients (the distributed
                # executor's circuit breaker floors its backoff on it) how
                # long to stay away instead of hammering the cap.
                writer.write(_render(503, {"Retry-After": "1"},
                                     err.encode("utf-8"),
                                     keep_alive=False))
                await writer.drain()
                return
            while True:
                try:
                    if self.idle_timeout is None:
                        parsed = await self._read_request(reader)
                    else:
                        # Bound the wait for the *next request head/body*
                        # (idle keep-alive sockets and slow-loris writers);
                        # request *handling* runs outside the timeout and
                        # is never interrupted.
                        try:
                            parsed = await asyncio.wait_for(
                                self._read_request(reader),
                                timeout=self.idle_timeout)
                        except asyncio.TimeoutError:
                            break
                except _BadRequest as exc:
                    err = json.dumps({"error": {"type": "bad_request",
                                                "message": str(exc)}})
                    writer.write(_render(exc.status, {}, err.encode("utf-8"),
                                         keep_alive=False))
                    await writer.drain()
                    break
                if parsed is None:      # clean EOF between requests
                    break
                method, path, headers, body = parsed
                injector = faults.active()
                if injector is not None:
                    plan = injector.plan
                    if injector.fire("server.delay", plan.delay,
                                     plan.delay_limit):
                        await asyncio.sleep(plan.delay_ms / 1000.0)
                    if injector.fire("server.drop", plan.drop,
                                     plan.drop_limit):
                        # Injected fault: vanish without a response.
                        log.debug("service.fault_drop", path=path)
                        self._shutdown_socket(writer)
                        break
                expires = self._deadline_of(headers)
                ctx = self._trace_ctx_of(headers)
                status, out_headers, out_body = await loop.run_in_executor(
                    None, self._dispatch, method, path, body, expires, ctx)
                keep_alive = headers.get("connection", "").lower() != "close"
                if isinstance(out_body, (bytes, bytearray)):
                    writer.write(_render(status, out_headers,
                                         bytes(out_body), keep_alive))
                    await writer.drain()
                else:
                    # Streamed body (an iterator of byte chunks, e.g.
                    # /cells NDJSON rows): chunked transfer encoding,
                    # produced lazily off-loop.
                    completed = await self._write_stream(
                        writer, status, out_headers, out_body, keep_alive,
                        loop)
                    if not completed:
                        # The producer failed after the head was already
                        # on the wire; the only honest signal left is an
                        # aborted connection (no terminal chunk), which
                        # clients detect as a truncated stream.
                        self._shutdown_socket(writer)
                        break
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError) as exc:
            # A peer vanishing mid-request is routine, but no longer
            # invisible: it surfaces at debug level for postmortems.
            log.debug("service.connection_aborted",
                      error=type(exc).__name__)
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(asyncio.current_task())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    def _shutdown_socket(writer: asyncio.StreamWriter) -> None:
        """Tear the TCP stream down *now*, not merely this descriptor.

        ``writer.close()`` only drops this process's file descriptor;
        worker processes forked while the connection was open (the
        ``/batch``//``/cells`` pool) may still hold a duplicate, in which
        case no FIN ever reaches the peer and a streaming client blocks
        on a half-dead socket until its own timeout.  ``shutdown()``
        acts on the underlying socket regardless of descriptor
        refcounts, so aborted streams fail fast at the client."""
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    @staticmethod
    def _deadline_of(headers: dict) -> Optional[float]:
        """Absolute monotonic expiry from an ``X-Deadline-Ms`` header, or
        ``None``.  Parsed in the transport so :meth:`ServiceApp.handle`
        keeps its (method, path, body) signature."""
        raw = headers.get("x-deadline-ms")
        if raw is None:
            return None
        try:
            budget_ms = int(raw)
        except ValueError:
            return None
        return time.monotonic() + max(0, budget_ms) / 1000.0

    @staticmethod
    def _trace_ctx_of(headers: dict) -> Optional[tuple]:
        """The caller's ``(trace_id, span_id)`` from the
        ``X-Trace-Id``/``X-Span-Id`` headers, or ``None``.  Parsed in the
        transport (like the deadline) so the app object never sees raw
        headers; a trace id alone is enough to join the trace."""
        trace_id = headers.get("x-trace-id")
        if not trace_id:
            return None
        return trace_id, headers.get("x-span-id") or None

    def _dispatch(self, method: str, path: str, body: bytes,
                  expires: Optional[float], ctx: Optional[tuple] = None):
        """Runs in the executor: shed the request with a structured 408 if
        its deadline expired while queued behind a busy pool — the client
        gave up already, so computing the answer is pure waste."""
        if expires is not None and time.monotonic() >= expires:
            log.warning("service.deadline_shed", method=method, path=path)
            err = json.dumps({"error": {
                "status": 408, "type": "deadline_exceeded",
                "message": "deadline expired before the request was "
                           "dispatched; the service is overloaded"}})
            return 408, {}, err.encode("utf-8")
        if ctx is not None:
            return self.app.handle(method, path, body, ctx)
        return self.app.handle(method, path, body)   # 3-arg compatible

    @staticmethod
    async def _write_stream(writer: asyncio.StreamWriter, status: int,
                            headers: dict, body_iter, keep_alive: bool,
                            loop) -> bool:
        """Write a lazily-produced body with chunked transfer encoding.

        Each chunk is pulled from ``body_iter`` in the default executor so
        slow cell computations never block the event loop.  Returns
        ``False`` when the producer raised mid-stream — the caller must
        then drop the connection (the terminal ``0`` chunk is deliberately
        withheld so the truncation is detectable)."""
        writer.write(_render_head(status, headers, keep_alive))
        await writer.drain()
        it = iter(body_iter)
        sentinel = object()
        while True:
            try:
                chunk = await loop.run_in_executor(None, next, it, sentinel)
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 — producer bug/pool death
                return False
            if chunk is sentinel:
                break
            if not chunk:
                continue
            writer.write(b"%x\r\n" % len(chunk) + bytes(chunk) + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return True

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        """Parse one request; ``None`` on clean EOF before a request line."""
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError) as exc:
            raise _BadRequest(400, f"oversized request line: {exc}") from exc
        if not request_line:
            return None
        parts = request_line.decode("latin-1").rstrip("\r\n").split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(400, "malformed request line")
        method, path, _version = parts

        headers: dict[str, str] = {}
        total = len(request_line)
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError) as exc:
                raise _BadRequest(400,
                                  f"oversized header line: {exc}") from exc
            total += len(line)
            if total > MAX_HEADER_BYTES:
                raise _BadRequest(400, "request head too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        length_s = headers.get("content-length", "0")
        try:
            length = int(length_s)
        except ValueError:
            raise _BadRequest(400,
                              f"bad Content-Length {length_s!r}") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _BadRequest(413, f"body of {length} bytes refused")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body


class ThreadedServer:
    """A live :class:`ServiceServer` on a background thread — the embedding
    used by the test suite and ``benchmarks/bench_service.py``.

    Usable as a context manager; ``port`` holds the bound port after
    ``start()`` (pass ``port=0`` for an ephemeral one).
    """

    def __init__(self, app: Optional[ServiceApp] = None,
                 host: str = "127.0.0.1", port: int = 0, *,
                 max_connections: Optional[int] = None,
                 idle_timeout: Optional[float] = None) -> None:
        self.server = ServiceServer(app, host, port,
                                    max_connections=max_connections,
                                    idle_timeout=idle_timeout)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def app(self) -> ServiceApp:
        return self.server.app

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ThreadedServer":
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="memsched-service", daemon=True)
        self._thread.start()
        if not started.wait(timeout=10.0):  # pragma: no cover - startup hang
            raise RuntimeError("service thread failed to start")
        return self

    def stop(self) -> None:
        if self._loop is None:
            return
        asyncio.run_coroutine_threadsafe(
            self.server.aclose(), self._loop).result(timeout=10.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve(host: str = "127.0.0.1", port: int = 8123, *,
          workers: int = 1, cache_size: int = 1024,
          cache_dir: Optional[str] = None,
          max_connections: Optional[int] = None,
          idle_timeout: Optional[float] = None) -> int:
    """Blocking entry point behind ``memsched serve``."""
    app = ServiceApp(workers=workers, cache_size=cache_size,
                     cache_dir=cache_dir)
    server = ServiceServer(app, host, port,
                           max_connections=max_connections,
                           idle_timeout=idle_timeout)

    async def run() -> None:
        await server.start()
        log.info("service.listening", host=server.host, port=server.port,
                 workers=app.workers, cache=app.cache.capacity,
                 cache_dir=cache_dir)
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0
