"""Experiment scale presets.

The paper's evaluation sizes (100 DAGs of 1000 tasks, 13x13-tile
factorisations, 50-graph ILP sweeps) are hours of pure-Python compute, so
every experiment driver takes a :class:`Scale`:

* ``ci``      — seconds; used by the test suite's smoke tests;
* ``default`` — minutes; the benchmark suite's default, already large enough
  for every qualitative conclusion of the paper to show;
* ``paper``   — the sizes of §6.1 (ILP graph size excepted: our branch and
  bound replaces CPLEX and proves optimality up to ~8 tasks, see DESIGN.md §5).

Select with the ``REPRO_SCALE`` environment variable or pass explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """All experiment size knobs for one preset."""

    name: str
    #: SmallRandSet (Figures 10-11).
    small_n_graphs: int
    small_size: int
    #: TinyRandSet — the optimal (ILP) comparison of Figure 10.
    tiny_n_graphs: int
    tiny_size: int
    #: LargeRandSet (Figures 12-13).
    large_n_graphs: int
    large_size: int
    #: Tile counts (Figures 14-15).
    lu_tiles: int
    cholesky_tiles: int
    #: Normalised memory grid (alpha values).
    n_alphas: int
    #: ILP effort caps.
    ilp_node_limit: int
    ilp_time_limit: float


SCALES: dict[str, Scale] = {
    "ci": Scale(
        name="ci",
        small_n_graphs=6, small_size=16,
        tiny_n_graphs=3, tiny_size=5,
        large_n_graphs=3, large_size=50,
        lu_tiles=4, cholesky_tiles=4,
        n_alphas=5,
        ilp_node_limit=2000, ilp_time_limit=10.0,
    ),
    "default": Scale(
        name="default",
        small_n_graphs=20, small_size=30,
        tiny_n_graphs=6, tiny_size=7,
        large_n_graphs=8, large_size=120,
        lu_tiles=8, cholesky_tiles=8,
        n_alphas=10,
        ilp_node_limit=6000, ilp_time_limit=30.0,
    ),
    "paper": Scale(
        name="paper",
        small_n_graphs=50, small_size=30,
        tiny_n_graphs=10, tiny_size=8,
        large_n_graphs=100, large_size=1000,
        lu_tiles=13, cholesky_tiles=13,
        n_alphas=20,
        ilp_node_limit=200000, ilp_time_limit=600.0,
    ),
}


def get_scale(name: str | None = None) -> Scale:
    """Resolve a scale by name, or from ``REPRO_SCALE`` (default ``default``)."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "default")
    try:
        return SCALES[name]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise ValueError(f"unknown scale {name!r}; known: {known}") from None
