"""Sharded parallel experiment engine.

The paper's evaluation (Figures 10–15) is a grid of independent cells —
one (graph, memory-bound) pair per cell, every algorithm run inside it —
and the sweeps in :mod:`repro.experiments.sweep` decompose exactly along
those lines.  This module provides the machinery shared by every driver:

* :func:`map_cells` — order-preserving map of a pure worker function over
  cell descriptors, either in-process (``jobs=1``) or fanned out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with chunked work units.
  The *same* worker code runs in both modes, so serial and parallel sweeps
  produce identical results by construction; the heavyweight payload
  (graphs, platform) is shipped to each worker process once via the pool
  initializer, not per cell, and every worker keeps a process-local
  ``cache`` dict that persists across its cells (used for shared
  reference-run caching: the memory-oblivious HEFT baseline of a graph is
  computed at most once per process instead of once per cell).
* :func:`cell_seed` — deterministic per-cell seed derivation, stable
  across processes, Python versions and ``PYTHONHASHSEED`` (hashlib, not
  ``hash``), so randomized cells stay reproducible under any sharding.
* :func:`feasibility_frontier` / :func:`frontier_sweep` — binary search
  for the smallest feasible uniform memory bound per (graph, algorithm).
  The heuristics are *not provably monotone* in the bound (a looser bound
  can reshuffle placements into an infeasible corner), so the search is
  guarded by an optional verification mode that samples bounds below the
  reported frontier and flags any feasible point it finds.

Workers are plain top-level functions and payloads are plain picklable
values, so the engine works under both the ``fork`` and ``spawn`` start
methods.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from .. import obs
from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..io.json_io import register_wire_dataclass
from ..scheduling.registry import get_scheduler
from ..scheduling.state import InfeasibleScheduleError

#: Per-process worker context: (worker function, payload, cache dict).
_WORKER: dict = {}

#: Cell workers invocable by name over the wire (``POST /cells``), filled
#: by the :func:`remote_worker` decorator.  Execution on a service host is
#: restricted to this registry — the wire carries *names*, never code.
_REMOTE_WORKERS: dict = {}

#: Ambient host list (or executor) consulted by :func:`map_cells` when no
#: explicit ``hosts`` argument is given; set via
#: :func:`repro.experiments.remote.remote_hosts`.
_DEFAULT_HOSTS = None

#: Ambient checkpoint journal consulted by :func:`map_cells` when no
#: explicit ``checkpoint`` argument is given; set via
#: :func:`repro.experiments.checkpoint.checkpointing`.
_DEFAULT_CHECKPOINT = None


def remote_worker(name: str) -> Callable:
    """Decorator registering a top-level cell worker for remote execution.

    The registered name is what travels in a ``POST /cells`` request; the
    function itself must stay importable on every host (same package
    version).  The decorator stamps the function with ``_remote_name`` so
    :func:`map_cells` can route it to hosts transparently.
    """
    def register(fn: Callable) -> Callable:
        if name in _REMOTE_WORKERS and _REMOTE_WORKERS[name] is not fn:
            raise ValueError(f"remote worker {name!r} already registered")
        _REMOTE_WORKERS[name] = fn
        fn._remote_name = name
        return fn
    return register


def _ensure_builtin_workers() -> None:
    """Import the modules whose import registers the built-in cell
    workers (idempotent; safe in server processes and pool workers)."""
    from . import ablation, sweep  # noqa: F401  (import == registration)


def get_remote_worker(name: str) -> Callable:
    """Resolve a registered cell worker; raises ``ValueError`` with the
    known names when unknown."""
    _ensure_builtin_workers()
    fn = _REMOTE_WORKERS.get(name)
    if fn is None:
        raise ValueError(f"unknown remote cell worker {name!r} "
                         f"(known: {sorted(_REMOTE_WORKERS)})")
    return fn


def remote_worker_names() -> list:
    """Registered cell-worker names (after importing the built-ins)."""
    _ensure_builtin_workers()
    return sorted(_REMOTE_WORKERS)


def set_default_hosts(hosts):
    """Install the ambient host list/executor used when ``map_cells`` is
    called without an explicit ``hosts``; returns the previous value (the
    :func:`repro.experiments.remote.remote_hosts` context manager restores
    it)."""
    global _DEFAULT_HOSTS
    previous = _DEFAULT_HOSTS
    _DEFAULT_HOSTS = hosts
    return previous


def default_hosts():
    """The ambient host list/executor (``None`` = run locally)."""
    return _DEFAULT_HOSTS


def set_default_checkpoint(checkpoint):
    """Install the ambient checkpoint journal used when ``map_cells`` is
    called without an explicit ``checkpoint``; returns the previous value
    (the :func:`repro.experiments.checkpoint.checkpointing` context
    manager restores it)."""
    global _DEFAULT_CHECKPOINT
    previous = _DEFAULT_CHECKPOINT
    _DEFAULT_CHECKPOINT = checkpoint
    return previous


def default_checkpoint():
    """The ambient checkpoint journal (``None`` = no journaling)."""
    return _DEFAULT_CHECKPOINT


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/1 → serial, 0 or negative →
    one worker per available CPU."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def cell_seed(*parts: object) -> int:
    """Deterministic 63-bit seed derived from the cell's identity.

    Stable across processes and runs (unlike ``hash``), so a cell draws
    the same randomness whether it runs serially, in any worker, or in a
    re-sharded sweep: ``cell_seed("tiebreak", graph.name, k)``.
    """
    digest = hashlib.sha256(repr(parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _init_worker(worker: Callable, payload: object) -> None:
    _WORKER["worker"] = worker
    _WORKER["payload"] = payload
    _WORKER["cache"] = {}


def _call_cell(cell: object) -> object:
    return _WORKER["worker"](_WORKER["payload"], _WORKER["cache"], cell)


def cached_reference(cache: dict, graphs: Sequence[TaskGraph],
                     platform: Platform, graph_idx: int,
                     refs: Optional[tuple] = None):
    """Reference run of ``graphs[graph_idx]``, computed at most once per
    process (``cache`` is the worker's process-local dict).  A caller that
    already holds the reference runs passes them as ``refs`` to skip
    recomputation."""
    ref = cache.get(("ref", graph_idx))
    if ref is None:
        if refs is not None:
            ref = refs[graph_idx]
        else:
            from .sweep import reference_run  # sweep imports engine
            ref = reference_run(graphs[graph_idx], platform)
        cache[("ref", graph_idx)] = ref
    return ref


def default_chunk_size(n_cells: int, jobs: int) -> int:
    """Cells per work unit: ~4 chunks per worker balances stragglers
    against per-chunk IPC, capped so tiny grids still spread out."""
    return max(1, n_cells // (jobs * 4))


def map_cells(
    worker: Callable[[object, dict, object], object],
    payload: object,
    cells: Sequence[object],
    *,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    hosts=None,
    checkpoint=None,
) -> list:
    """Map ``worker(payload, cache, cell)`` over ``cells``, returning
    results in cell order.

    ``worker`` must be a top-level function and must not mutate
    ``payload``; ``cache`` is a dict scoped to the executing process
    (short-lived for ``jobs=1``) that survives across that worker's cells.
    With ``jobs > 1`` the cells are fanned out over a process pool in
    chunks; exceptions raised by any cell propagate to the caller in both
    modes.

    ``hosts`` — a list of ``"host:port"`` addresses of running ``memsched
    serve`` instances (or a prepared
    :class:`repro.experiments.remote.RemoteExecutor`) — shards the cells
    *across machines* instead: ``worker`` must then be registered with
    :func:`remote_worker`.  When ``hosts`` is omitted the ambient value
    installed by :func:`repro.experiments.remote.remote_hosts` applies, so
    every sweep gains multi-host mode without touching its driver.  All
    three modes run the same cell functions and aggregate in the same
    order — serial ≡ ``jobs=N`` ≡ distributed, by construction.

    ``checkpoint`` — a journal path or an open
    :class:`repro.experiments.checkpoint.CellCheckpoint` — journals each
    completed cell's result as it lands (in every mode), and replays
    already-completed cells from the journal instead of re-executing
    them, so a crashed campaign resumes where it stopped with
    byte-identical output.  Defaults to the ambient journal installed by
    :func:`repro.experiments.checkpoint.checkpointing`.
    """
    cells = list(cells)
    if hosts is None:
        hosts = _DEFAULT_HOSTS
    if checkpoint is None:
        checkpoint = _DEFAULT_CHECKPOINT
    if checkpoint is not None and cells:
        return _map_cells_checkpointed(worker, payload, cells, jobs=jobs,
                                       chunk_size=chunk_size, hosts=hosts,
                                       checkpoint=checkpoint)
    return _map_cells_direct(worker, payload, cells, jobs=jobs,
                             chunk_size=chunk_size, hosts=hosts)


def _map_cells_direct(worker, payload, cells, *, jobs, chunk_size, hosts,
                      on_result=None):
    """The three execution modes, un-checkpointed.  ``on_result(index,
    result_object)`` (local modes) is invoked as each cell lands, in
    completion order — the checkpoint layer's incremental-journal hook;
    the distributed mode passes the wire-level equivalent through to the
    executor, which owns result decoding."""
    if hosts is not None and cells:
        from .remote import run_remote  # deferred: remote imports engine
        with obs.span("map_cells", mode="remote", n_cells=len(cells)):
            return run_remote(worker, payload, cells, hosts,
                              chunk_size=chunk_size, on_result_wire=on_result)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(cells) <= 1:
        st = obs.active()
        if st is None:
            cache: dict = {}
            results = []
            for i, cell in enumerate(cells):
                result = worker(payload, cache, cell)
                if on_result is not None:
                    on_result(i, result)
                results.append(result)
            return results
        return _serial_cells_observed(worker, payload, cells, on_result, st)
    if chunk_size is None:
        chunk_size = default_chunk_size(len(cells), jobs)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(cells)),
        initializer=_init_worker,
        initargs=(worker, payload),
    ) as pool, obs.span("map_cells", mode="pool", n_cells=len(cells),
                        jobs=jobs):
        results = []
        # pool.map yields in cell order as results arrive, so the hook
        # sees completed prefixes incrementally, not one burst at the end.
        for i, result in enumerate(
                pool.map(_call_cell, cells, chunksize=chunk_size)):
            if on_result is not None:
                on_result(i, result)
            results.append(result)
        return results


def _serial_cells_observed(worker, payload, cells, on_result, st):
    """The serial ``map_cells`` loop with :mod:`repro.obs` active: each
    cell lands in the ``memsched_cell_seconds{mode="serial"}`` histogram
    and (with a tracer attached) emits a ``cell`` span keyed by its grid
    index — structurally identical to the spans the distributed
    coordinator re-emits, so serial and sharded traces line up."""
    hist = st.registry.histogram("memsched_cell_seconds", mode="serial")
    tracer = st.tracer
    cache: dict = {}
    results = []
    with obs.span("map_cells", mode="serial", n_cells=len(cells)):
        parent = tracer.current() if tracer is not None else None
        for i, cell in enumerate(cells):
            t0 = time.perf_counter()
            result = worker(payload, cache, cell)
            duration = time.perf_counter() - t0
            hist.observe(duration)
            if tracer is not None:
                tracer.emit(
                    "cell",
                    span_id=tracer.child_id(parent, "cell", key=i),
                    parent_id=parent, dur=duration, attrs={"i": i})
            if on_result is not None:
                on_result(i, result)
            results.append(result)
    return results


def _map_cells_checkpointed(worker, payload, cells, *, jobs, chunk_size,
                            hosts, checkpoint):
    """Resolve ``cells`` against a checkpoint journal, execute only the
    missing ones (journaling each as it completes), and return the full
    result list — byte-identical to an uninterrupted run, because cell
    wire round-trips exactly and workers are pure."""
    from ..io.json_io import from_cell_wire, to_cell_wire
    from .checkpoint import CellCheckpoint, call_key, cell_key, \
        payload_digest

    owned = not isinstance(checkpoint, CellCheckpoint)
    ckpt = CellCheckpoint(checkpoint, resume=True) if owned else checkpoint
    try:
        name = getattr(worker, "_remote_name", None) \
            or getattr(worker, "__qualname__", str(worker))
        pdigest = payload_digest(to_cell_wire(payload))
        wires = [to_cell_wire(c) for c in cells]
        keys = [cell_key(name, pdigest, w) for w in wires]
        ck = call_key(name, pdigest, keys)

        _nothing = object()
        results = [_nothing] * len(cells)
        pending: list = []      # indices to execute (first per unique key)
        seen: dict = {}         # key -> first pending index
        for i, key in enumerate(keys):
            hit = ckpt.get(key, _nothing)
            if hit is not _nothing:
                results[i] = from_cell_wire(hit)
            elif key in seen:
                pass            # duplicate cell: executed once, filled below
            else:
                seen[key] = i
                pending.append(i)

        if pending:
            def on_result(j: int, result: object) -> None:
                ckpt.record(keys[pending[j]], to_cell_wire(result))

            def on_result_wire(j: int, result_wire: object) -> None:
                ckpt.record(keys[pending[j]], result_wire)

            hook = on_result_wire if hosts is not None else on_result
            sub = _map_cells_direct(
                worker, payload, [cells[i] for i in pending], jobs=jobs,
                chunk_size=chunk_size, hosts=hosts, on_result=hook)
            for j, i in enumerate(pending):
                results[i] = sub[j]
        # Fill duplicates (and anything else) from the journal.
        for i, key in enumerate(keys):
            if results[i] is _nothing:
                results[i] = from_cell_wire(ckpt.get(key))
        ckpt.mark_done(ck, len(cells))
        return results
    finally:
        if owned:
            ckpt.close()


# ----------------------------------------------------------------------
# feasibility frontier (binary search over the uniform memory bound)
# ----------------------------------------------------------------------
@register_wire_dataclass
@dataclass(frozen=True)
class FrontierPoint:
    """Smallest feasible uniform memory bound found for one
    (graph, algorithm) pair."""

    graph_name: str
    algorithm: str
    #: Smallest bound where the heuristic produced a schedule.
    feasible_bound: float
    #: Largest probed bound below it that failed (0.0 when the heuristic
    #: succeeded at every probe).
    infeasible_bound: float
    #: Heuristic invocations spent (search + verification).
    n_evals: int
    #: ``None`` without verification; ``False`` when a feasible bound was
    #: found *below* the reported frontier (non-monotone heuristic).
    verified: Optional[bool]


def _is_feasible(graph: TaskGraph, platform: Platform, algorithm: str,
                 bound: float) -> bool:
    try:
        get_scheduler(algorithm)(graph, platform.with_uniform_bound(bound))
    except InfeasibleScheduleError:
        return False
    return True


def feasibility_frontier(
    graph: TaskGraph,
    platform: Platform,
    algorithm: str,
    *,
    hi: Optional[float] = None,
    rel_tol: float = 1e-2,
    verify_samples: int = 0,
) -> FrontierPoint:
    """Binary-search the smallest uniform memory bound under which
    ``algorithm`` schedules ``graph``.

    ``hi`` defaults to the memory-oblivious HEFT requirement (the alpha=1
    point of the normalised sweeps) and is doubled until feasible.  The
    search assumes feasibility is monotone in the bound, which holds
    empirically but is not guaranteed for list heuristics; pass
    ``verify_samples > 0`` to probe that many bounds below the reported
    frontier — any feasible probe flags the result ``verified=False``
    (and the caller should fall back to a grid sweep for that pair).
    """
    from .sweep import reference_run  # local import: sweep imports engine

    n_evals = 0
    if hi is None:
        hi = reference_run(graph, platform).ref_memory
    if hi <= 0.0 or not math.isfinite(hi):
        raise ValueError(f"need a positive finite upper bound, got {hi}")
    lo = 0.0  # a zero bound is infeasible for any graph with data
    for _ in range(32):
        n_evals += 1
        if _is_feasible(graph, platform, algorithm, hi):
            break
        lo = hi  # every failed doubling probe tightens the bracket
        hi *= 2.0
    else:
        raise InfeasibleScheduleError(
            f"{algorithm} cannot schedule {graph.name!r} even with "
            f"bound {hi:g}")

    tol = rel_tol * hi
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        n_evals += 1
        if _is_feasible(graph, platform, algorithm, mid):
            hi = mid
        else:
            lo = mid

    verified: Optional[bool] = None
    if verify_samples > 0:
        verified = True
        for k in range(1, verify_samples + 1):
            probe = lo * k / (verify_samples + 1)
            if probe <= 0.0:
                continue
            n_evals += 1
            if _is_feasible(graph, platform, algorithm, probe):
                verified = False
                break
    return FrontierPoint(
        graph_name=graph.name,
        algorithm=algorithm,
        feasible_bound=hi,
        infeasible_bound=lo,
        n_evals=n_evals,
        verified=verified,
    )


@remote_worker("engine.frontier")
def _frontier_cell(payload: tuple, cache: dict, cell: tuple) -> FrontierPoint:
    graphs, platform, rel_tol, verify_samples = payload
    graph_idx, algorithm = cell
    ref = cached_reference(cache, graphs, platform, graph_idx)
    return feasibility_frontier(
        graphs[graph_idx], platform, algorithm,
        hi=ref.ref_memory, rel_tol=rel_tol, verify_samples=verify_samples)


def frontier_sweep(
    graphs: Sequence[TaskGraph],
    platform: Platform,
    algorithms: Sequence[str] = ("memheft", "memminmin"),
    *,
    rel_tol: float = 1e-2,
    verify_samples: int = 0,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
) -> list[FrontierPoint]:
    """Feasibility frontier of every (graph, algorithm) pair, sharded over
    ``jobs`` processes.  A logarithmic-probe replacement for sweeping a
    dense alpha grid when only the success boundary is of interest."""
    cells = [(gi, name) for gi in range(len(graphs)) for name in algorithms]
    payload = (tuple(graphs), platform, rel_tol, verify_samples)
    return map_cells(_frontier_cell, payload, cells,
                     jobs=jobs, chunk_size=chunk_size)
