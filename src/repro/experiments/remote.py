"""Distributed cell executor: shard experiment grids across service hosts.

:class:`RemoteExecutor` is the multi-host half of the experiment engine.
Where :func:`repro.experiments.engine.map_cells` with ``jobs=N`` fans a
sweep's cells over local worker processes, the executor fans the same
cells over N running ``memsched serve`` hosts through their ``POST
/cells`` endpoint (:mod:`repro.service.app`), and aggregates the streamed
results back into cell order.  The cell functions, the payload and the
per-cell results are identical in all three modes — serial ≡ ``jobs=N`` ≡
distributed, by construction (pinned by ``tests/experiments/test_remote.py``
and the CI distributed smoke).

Scheduling model:

* **Weighted partitioning.**  Every host's ``GET /healthz`` advertises its
  process-pool size (``workers``); the coordinator splits the cell list
  into contiguous chunks and each dispatch to a host takes ``workers``
  chunks at a time, so a 4-worker box pulls four times the cells of a
  1-worker box — and, because hosts pull from a shared queue as they
  finish, slow hosts naturally end up with less.
* **Failure = reassignment.**  A host that drops the connection, times
  out, answers a 5xx (including the service's ``503 saturated``
  back-pressure), or streams back malformed rows is marked dead *for the
  current call* and its unfinished chunks go back on the queue for the
  survivors; the retried cells recompute to the same values (cell
  functions are pure), so no result is lost and none changes.  Only when
  *every* host is dead does the sweep fail (:class:`RemoteExecutorError`,
  carrying each host's last error).  The next ``map_cells`` call
  re-probes dead hosts (in parallel) and resurrects any that answer, so
  a restarted or briefly-saturated host rejoins the campaign.
* **Deterministic errors stay errors.**  A cell function that raises on
  one host would raise on every host; such per-cell errors are *not*
  retried — they surface as :class:`CellExecutionError`, matching
  ``map_cells``'s exception-propagation contract.

Hosts only execute *registered* top-level cell functions
(:func:`repro.experiments.engine.remote_worker`): the wire carries worker
names and tagged JSON values (:func:`repro.io.json_io.to_cell_wire`),
never code.

Usage::

    with remote_hosts(["10.0.0.1:8123", "10.0.0.2:8123"]):
        result = normalized_sweep(graphs, platform)      # sharded

    executor = RemoteExecutor(["h1:8123", "h2:8123"])
    rows = map_cells(_normalized_cell, payload, cells, hosts=executor)
    print(executor.stats())
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from .. import faults, obs
from ..obs import log
from ..io.json_io import from_cell_wire, to_cell_wire
from ..service.client import ServiceClient, ServiceClientError
from .engine import set_default_hosts

#: Unfilled-slot marker (``None`` is a legitimate cell result).
_MISSING = object()


class RemoteExecutorError(RuntimeError):
    """The distributed run cannot proceed (no usable hosts / cells left
    unassigned after every host died)."""


class CellExecutionError(RuntimeError):
    """A cell function raised on a host — deterministic, so not retried.

    ``index`` is the failing cell's position, ``error`` the structured
    ``{"type", "message"}`` body the host reported.
    """

    def __init__(self, index: int, error: dict) -> None:
        super().__init__(f"cell {index} failed on the host: "
                         f"{error.get('message', error)}")
        self.index = index
        self.error = dict(error)


def parse_host(spec: Union[str, tuple]) -> tuple[str, int]:
    """``"host:port"`` / ``(host, port)`` → ``(host, port)``."""
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    host, sep, port = str(spec).strip().rpartition(":")
    if not sep or not host:
        raise ValueError(f"host spec {spec!r} is not 'host:port'")
    return host, int(port)


@dataclass
class RemoteHost:
    """One service host and its live dispatch accounting.

    Circuit-breaker state: ``consecutive_failures`` counts transient
    failures since the last successful work request; while it is nonzero
    the host is *open* until ``open_until`` (monotonic time), after which
    it is *half-open* — the next dispatch probes ``/healthz`` before
    taking real work.  ``alive=False`` (the budget exhausted, or the
    initial probe failed) removes the host for the rest of the call; the
    next call's re-probe may resurrect it.
    """

    host: str
    port: int
    #: Advertised /healthz ``workers`` (dispatch weight); 0 until probed.
    weight: int = 0
    alive: bool = True
    error: Optional[str] = None
    n_requests: int = 0
    n_cells: int = 0
    probed: bool = field(default=False, repr=False)
    #: Transient failures since the last successful work request.
    consecutive_failures: int = 0
    #: Monotonic time before which the breaker keeps the host open.
    open_until: float = field(default=0.0, repr=False)
    #: Total retries this host consumed (diagnostics).
    n_retries: int = 0
    #: Coordinator-side network-attempt counter (fault blackout windows
    #: are keyed on it).
    n_attempts: int = field(default=0, repr=False)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def reset_breaker(self) -> None:
        self.consecutive_failures = 0
        self.open_until = 0.0


class RemoteExecutor:
    """Coordinates one or more sweeps over a fixed set of service hosts.

    Host state (weights, liveness, per-host counters) persists across
    :meth:`map_cells` calls, so one executor can drive a whole experiment
    campaign and :meth:`stats` reports the campaign totals.
    """

    def __init__(self, hosts: Sequence[Union[str, tuple]], *,
                 timeout: float = 600.0, ready_timeout: float = 10.0,
                 retry_budget: int = 2, backoff_base: float = 0.1,
                 backoff_cap: float = 2.0) -> None:
        if not hosts:
            raise ValueError("need at least one host")
        self.hosts = [RemoteHost(*parse_host(h)) for h in hosts]
        if len({h.address for h in self.hosts}) != len(self.hosts):
            raise ValueError("duplicate host addresses")
        #: Per-request deadline: a single /cells request (including its
        #: streamed rows) may not outlive this many seconds.
        self.timeout = timeout
        self.ready_timeout = ready_timeout
        #: Transient failures tolerated per host before it is dropped for
        #: the call (deterministic CellExecutionError never retries).
        self.retry_budget = max(0, int(retry_budget))
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.n_reassigned_chunks = 0
        self.n_rounds = 0
        self.n_retries = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def probe(self) -> list[RemoteHost]:
        """Probe every new or dead host's ``/healthz``; weight = its
        advertised worker-pool size.

        Probes run in parallel, so one ``ready_timeout`` bounds the whole
        pass even with several hosts down.  A dead host that answers
        again is **resurrected** (alive, error cleared, weight
        refreshed): a restart or a transient ``503 saturated`` costs the
        host at most the rest of one sweep, never the campaign.  Healthy
        already-probed hosts are not re-probed — back-to-back sweeps pay
        nothing here.
        """
        pending = [h for h in self.hosts if not h.probed or not h.alive]

        def probe_one(h: RemoteHost) -> None:
            client = ServiceClient(h.host, h.port, timeout=self.timeout)
            try:
                health = client.wait_until_ready(self.ready_timeout)
                h.weight = max(1, int(health.get("workers", 1)))
                h.probed = True
                h.alive = True
                h.error = None
                h.reset_breaker()
            except ServiceClientError as exc:
                h.alive = False
                h.error = f"probe failed: {exc}"
                log.warning("remote.probe_failed", host=h.address,
                            error=str(exc))
            finally:
                client.close()

        if len(pending) == 1:
            probe_one(pending[0])
        elif pending:
            threads = [threading.Thread(target=probe_one, args=(h,),
                                        name=f"probe-{h.address}",
                                        daemon=True) for h in pending]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        return [h for h in self.hosts if h.alive]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def map_cells(self, worker: Union[Callable, str], payload: object,
                  cells: Sequence[object], *,
                  chunk_size: Optional[int] = None,
                  on_result_wire: Optional[Callable] = None) -> list:
        """Run ``worker`` over ``cells`` across the hosts; results in cell
        order, exactly as the serial engine would produce them.

        ``on_result_wire(index, wire)`` — when given — is invoked once per
        cell as its (wire-encoded) result first lands, in completion
        order; the checkpoint layer journals from exactly this hook.  A
        retried cell (host died after the row was scattered) does not
        re-invoke it."""
        name = worker if isinstance(worker, str) else \
            getattr(worker, "_remote_name", None)
        if name is None:
            raise ValueError(
                f"{getattr(worker, '__name__', worker)!r} is not a "
                f"registered remote cell worker (decorate it with "
                f"@remote_worker(name) to shard it over hosts)")
        cells = list(cells)
        if not cells:
            return []
        alive = self.probe()
        if not alive:
            raise RemoteExecutorError(
                "no usable hosts: "
                + "; ".join(f"{h.address}: {h.error}" for h in self.hosts))

        payload_wire = to_cell_wire(payload)
        wires = [to_cell_wire(c) for c in cells]
        n = len(wires)
        total_weight = sum(h.weight for h in alive)
        base = chunk_size if chunk_size else max(1, n // (4 * total_weight))
        #: Work queue of (start_index, [cell wires]) chunks.
        chunks: deque = deque((i, wires[i:i + base])
                              for i in range(0, n, base))
        results: list = [_MISSING] * n
        #: First fatal (non-retryable) error: CellExecutionError or a 4xx.
        fatal: list[Exception] = []

        while True:
            with self._lock:
                pending = bool(chunks)
            usable = [h for h in self.hosts if h.alive]
            if not pending or not usable or fatal:
                break
            now = time.monotonic()
            ready = [h for h in usable if h.open_until <= now]
            if not ready:
                # Every usable host is cooling down behind its breaker;
                # wait for the earliest to go half-open instead of
                # declaring the sweep dead.
                wait = min(h.open_until for h in usable) - now
                time.sleep(max(0.001, min(wait, self.backoff_cap)))
                continue
            self.n_rounds += 1
            # Span stacks are thread-local, so the host threads get the
            # coordinator's current span as an explicit parent.
            st = obs.active()
            obs_parent = (st.tracer.current()
                          if st is not None and st.tracer is not None
                          else None)
            threads = [
                threading.Thread(
                    target=self._drain_host,
                    args=(h, name, payload_wire, chunks, results, fatal,
                          on_result_wire, obs_parent),
                    name=f"remote-{h.address}", daemon=True)
                for h in ready
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        if fatal:
            raise fatal[0]
        if chunks or any(r is _MISSING for r in results):
            undone = sum(len(c[1]) for c in chunks)
            raise RemoteExecutorError(
                f"all hosts died with {undone} cells still queued: "
                + "; ".join(f"{h.address}: {h.error}"
                            for h in self.hosts if not h.alive))
        return [from_cell_wire(r) for r in results]

    def _check_blackout(self, host: RemoteHost) -> None:
        """Coordinator-side fault hook: when an installed fault plan
        declares a blackout window covering this host's next network
        attempt, simulate the outage instead of touching the wire."""
        injector = faults.active()
        with self._lock:
            attempt = host.n_attempts
            host.n_attempts += 1
        if injector is not None and injector.plan.blackout:
            index = next(i for i, h in enumerate(self.hosts) if h is host)
            if injector.in_blackout(index, attempt):
                injector.fire("remote.blackout", 1.0)   # log the event
                raise ServiceClientError(
                    0, "blackout",
                    f"injected blackout of {host.address} "
                    f"(attempt {attempt})")

    def _drain_host(self, host: RemoteHost, worker_name: str,
                    payload_wire: object, chunks: deque, results: list,
                    fatal: list, on_result_wire: Optional[Callable] = None,
                    obs_parent: Optional[str] = None) -> None:
        """One host's dispatch loop: pull up to ``weight`` chunks per
        request, stream them through ``/cells``, scatter the rows.  A
        host-level failure requeues the chunks and trips the host's
        breaker — exponential backoff while the retry budget lasts, dead
        for the call after.  A half-open host (breaker cooled down after
        failures) must pass a ``/healthz`` probe before taking real work;
        only a successful work request closes the breaker, so a host
        whose health endpoint answers but whose work requests keep
        failing still exhausts its budget."""
        client = ServiceClient(host.host, host.port, timeout=self.timeout,
                               deadline=self.timeout)
        try:
            if host.consecutive_failures > 0:
                try:
                    self._check_blackout(host)
                    client.healthz()
                except ServiceClientError as exc:
                    self._host_failed(host, [], chunks,
                                      f"half-open probe failed: {exc}")
                    return
            while True:
                with self._lock:
                    if fatal:
                        return
                    take = [chunks.popleft()
                            for _ in range(min(host.weight, len(chunks)))]
                if not take:
                    return
                merged = [w for _, chunk in take for w in chunk]
                offsets = [start + k for start, chunk in take
                           for k in range(len(chunk))]
                st = obs.active()
                try:
                    self._check_blackout(host)
                    t0 = time.perf_counter() if st is not None else 0.0
                    rows = client.run_cells(worker_name, payload_wire,
                                            merged)
                    request_span = None
                    if st is not None:
                        request_span = self._record_request(
                            st, host, len(merged),
                            time.perf_counter() - t0, obs_parent)
                    filled = self._scatter(rows, offsets, results,
                                           on_result_wire,
                                           span_parent=request_span)
                except ServiceClientError as exc:
                    if (exc.status and 400 <= exc.status < 500
                            and exc.err_type != "not_found"):
                        # The request itself is wrong (unknown worker,
                        # bad wire) — every host would refuse it.  A
                        # route-level 404 ("not_found") is different:
                        # that's a version-skewed host without /cells,
                        # which must die like any other bad host instead
                        # of aborting the sweep the healthy hosts could
                        # finish.
                        with self._lock:
                            fatal.append(exc)
                            for item in reversed(take):
                                chunks.appendleft(item)
                        return
                    # A truncated or malformed stream after a committed
                    # 200 means the host process died mid-computation (a
                    # crash, not congestion); a route-404 is a
                    # version-skewed host.  Neither can succeed on retry
                    # within this call.  Everything else — connection
                    # failures, timeouts, 503 shedding, deadline misses —
                    # is transient and spends the retry budget.
                    self._host_failed(
                        host, take, chunks, str(exc),
                        retry_after=exc.retry_after,
                        permanent=exc.err_type in ("truncated", "malformed",
                                                   "not_found"))
                    return
                except CellExecutionError as exc:
                    with self._lock:
                        fatal.append(exc)
                    return
                if not filled:
                    self._host_failed(
                        host, take, chunks,
                        "malformed /cells rows (bad indices or shape)",
                        permanent=True)
                    return
                with self._lock:
                    host.n_requests += 1
                    host.n_cells += len(merged)
                    host.error = None
                    host.reset_breaker()   # a full success closes the breaker
        finally:
            client.close()

    def _record_request(self, st, host: RemoteHost, n_cells: int,
                        duration: float,
                        obs_parent: Optional[str]) -> Optional[str]:
        """Account one successful ``/cells`` round trip; returns the
        request's span id (the parent for the re-emitted cell spans), or
        ``None`` when no tracer is attached.  The span key is the host's
        attempt counter, so retried requests get distinct, deterministic
        ids."""
        st.registry.histogram("memsched_remote_request_seconds",
                              host=host.address).observe(duration)
        st.registry.counter("memsched_remote_cells_total",
                            host=host.address).inc(n_cells)
        tracer = st.tracer
        if tracer is None:
            return None
        span_id = tracer.child_id(obs_parent, "remote_request",
                                  key=(host.address, host.n_attempts))
        tracer.emit("remote_request", span_id=span_id,
                    parent_id=obs_parent, dur=duration,
                    attrs={"host": host.address, "n_cells": n_cells})
        return span_id

    def _scatter(self, rows: list, offsets: list, results: list,
                 on_result_wire: Optional[Callable] = None,
                 span_parent: Optional[str] = None) -> bool:
        """Validate one response's rows against the dispatched offsets and
        fill ``results`` (wire values; decoded once at the end).  Returns
        ``False`` on structural problems — the caller treats the host as
        malfunctioning.  Raises :class:`CellExecutionError` for structured
        per-cell errors (after filling the sound rows, so a later retry
        pass is not needed for them).

        With a tracer attached (``span_parent``) every row is re-emitted
        as a coordinator-side ``cell`` span keyed by the cell's *global*
        grid index, carrying the host-measured duration when the row has
        an ``obs`` annotation — the one place a sweep cell's identity,
        host, and timing meet, making every cell reconstructable from the
        coordinator's trace alone."""
        if len(rows) != len(offsets):
            return False
        staged = {}
        first_error: Optional[CellExecutionError] = None
        for row in rows:
            i = row.get("i")
            if not isinstance(i, int) or not 0 <= i < len(offsets) \
                    or i in staged:
                return False
            if "error" in row:
                if first_error is None:
                    first_error = CellExecutionError(offsets[i],
                                                     row["error"])
                staged[i] = _MISSING
            elif "r" in row:
                staged[i] = row["r"]
            else:
                return False
        if span_parent is not None:
            st = obs.active()
            tracer = st.tracer if st is not None else None
            if tracer is not None:
                for row in rows:
                    index = offsets[row["i"]]
                    attrs = {"i": index}
                    annotation = row.get("obs")
                    dur = None
                    if isinstance(annotation, dict):
                        dur = annotation.get("dur")
                        if "pid" in annotation:
                            attrs["pid"] = annotation["pid"]
                    if "error" in row:
                        attrs["error"] = row["error"].get("type", "error")
                    tracer.emit(
                        "cell",
                        span_id=tracer.child_id(span_parent, "cell",
                                                key=index),
                        parent_id=span_parent, dur=dur, attrs=attrs)
        fresh: list = []
        with self._lock:
            for i, value in staged.items():
                if value is not _MISSING:
                    if results[offsets[i]] is _MISSING:
                        fresh.append((offsets[i], value))
                    results[offsets[i]] = value
        if on_result_wire is not None:
            for index, value in fresh:
                on_result_wire(index, value)
        if first_error is not None:
            raise first_error
        return True

    def _backoff(self, host: RemoteHost,
                 retry_after: Optional[float]) -> float:
        """Breaker cool-down before the host's next (half-open) attempt:
        exponential in its consecutive failures, deterministically
        jittered by host identity (sha256, not ``random`` — same plan,
        same schedule), floored by any server-sent ``Retry-After``."""
        k = max(1, host.consecutive_failures)
        base = min(self.backoff_cap, self.backoff_base * (2 ** (k - 1)))
        seed = hashlib.sha256(
            f"{host.address}:{k}".encode()).digest()
        jitter = 1.0 + 0.25 * (int.from_bytes(seed[:4], "big") / 2.0 ** 32)
        delay = base * jitter
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        return min(delay, self.backoff_cap * 1.25)

    def _host_failed(self, host: RemoteHost, take: list, chunks: deque,
                     message: str,
                     retry_after: Optional[float] = None,
                     permanent: bool = False) -> None:
        """Requeue the host's chunks and trip its breaker: open with
        backoff while the retry budget lasts, dead for the call after.
        ``permanent`` failures (the host died mid-stream, speaks a
        malformed protocol, or lacks /cells entirely) skip the budget —
        retrying cannot help within this call; the next campaign's probe
        may still resurrect the host."""
        with self._lock:
            for item in reversed(take):
                chunks.appendleft(item)
            host.error = message
            self.n_reassigned_chunks += len(take)
            host.consecutive_failures += 1
            retried = not (permanent
                           or host.consecutive_failures > self.retry_budget)
            if not retried:
                host.alive = False
                host.open_until = 0.0
            else:
                host.n_retries += 1
                self.n_retries += 1
                host.open_until = time.monotonic() \
                    + self._backoff(host, retry_after)
        st = obs.active()
        if st is not None and retried:
            st.registry.counter("memsched_remote_retries_total",
                                host=host.address).inc()
        log.warning("remote.host_failed", host=host.address,
                    error=message, permanent=permanent,
                    alive=host.alive, requeued_chunks=len(take),
                    failures=host.consecutive_failures)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Dispatch accounting: per-host weights/cells/requests, dead
        hosts with their last error, chunks reassigned after failures."""
        with self._lock:
            return {
                "hosts": {
                    h.address: {
                        "weight": h.weight,
                        "alive": h.alive,
                        "requests": h.n_requests,
                        "cells": h.n_cells,
                        "error": h.error,
                        "retries": h.n_retries,
                    }
                    for h in self.hosts
                },
                "reassigned_chunks": self.n_reassigned_chunks,
                "rounds": self.n_rounds,
                "retries": self.n_retries,
            }


def format_host_stats(stats: dict) -> list[str]:
    """Human-readable lines for :meth:`RemoteExecutor.stats` — the one
    rendering shared by ``memsched experiment --hosts`` and
    ``scripts/run_all_experiments.py``."""
    lines = []
    for addr, info in stats["hosts"].items():
        state = "ok" if info["alive"] else f"DEAD ({info['error']})"
        lines.append(f"host {addr}: weight={info['weight']} "
                     f"cells={info['cells']} requests={info['requests']} "
                     f"{state}")
    if stats["reassigned_chunks"]:
        lines.append(f"reassigned {stats['reassigned_chunks']} chunks "
                     f"after host failures")
    return lines


def run_remote(worker: Union[Callable, str], payload: object,
               cells: Sequence[object],
               hosts: Union[RemoteExecutor, Sequence], *,
               chunk_size: Optional[int] = None,
               on_result_wire: Optional[Callable] = None) -> list:
    """One distributed ``map_cells`` call (the hook
    :func:`repro.experiments.engine.map_cells` delegates to when given
    ``hosts``).  ``hosts`` is an address list or a prepared
    :class:`RemoteExecutor` (pass the executor to keep state/stats across
    calls)."""
    executor = hosts if isinstance(hosts, RemoteExecutor) \
        else RemoteExecutor(hosts)
    return executor.map_cells(worker, payload, cells,
                              chunk_size=chunk_size,
                              on_result_wire=on_result_wire)


@contextmanager
def remote_hosts(hosts: Union[RemoteExecutor, Sequence]):
    """Make every :func:`map_cells` call inside the block distributed.

    This is how whole experiment drivers go multi-host without changing
    their signatures: ``memsched experiment fig12 --hosts H1,H2`` simply
    wraps the driver call.  Yields the shared :class:`RemoteExecutor` so
    callers can inspect :meth:`~RemoteExecutor.stats` afterwards.
    """
    executor = hosts if isinstance(hosts, RemoteExecutor) \
        else RemoteExecutor(hosts)
    previous = set_default_hosts(executor)
    try:
        yield executor
    finally:
        set_default_hosts(previous)
