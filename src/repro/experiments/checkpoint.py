"""Sweep checkpoint/resume: a content-addressed journal of cell results.

A multi-hour campaign dies with its coordinator unless completed work is
durable.  :class:`CellCheckpoint` journals every finished cell of a
:func:`repro.experiments.engine.map_cells` call as one checksummed JSONL
line — the same replay pattern as the service's ``--cache-dir`` journal —
keyed by the **content address of the cell itself**
(:func:`repro.io.json_io.cell_wire_digest` over worker name, payload
digest and cell wire).  Rerunning the same campaign against the same
journal (``memsched experiment ... --checkpoint ck.jsonl --resume``)
replays completed cells from disk and re-executes only the unfinished
ones; cell workers are pure and cell wire round-trips exactly, so the
resumed output is byte-identical to an uninterrupted run.

Journal format (one :func:`repro.io.json_io.journal_encode` line each)::

    {"crc": ..., "row": {"op": "cell", "k": <digest>, "r": <wire>}}
    {"crc": ..., "row": {"op": "done", "call": <digest>, "n": <count>}}

``done`` sentinels mark a whole ``map_cells`` call complete (a driver
may make several calls — e.g. fig10 sweeps heuristics and ILP
separately — and each gets its own sentinel).  Replay skips torn or
checksum-failing lines and keeps going: the corrupted cell simply
re-executes.  ``cell`` records are flushed per line, so a ``kill -9``
of the coordinator loses at most the cells in flight.

Content addressing makes the journal self-describing: no positional
bookkeeping, duplicate cells in one grid resolve to one execution, and a
*changed* sweep (different cells) safely reuses whatever overlaps.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Union

from .. import faults, obs
from ..io.json_io import (
    canonical_json,
    cell_wire_digest,
    journal_decode,
    journal_encode,
)

PathLike = Union[str, "Path"]


class CheckpointError(RuntimeError):
    """The checkpoint journal cannot be used as requested."""


def cell_key(worker_name: str, payload_digest: str, cell_wire: object
             ) -> str:
    """Content address of one cell *execution*: the same cell descriptor
    under a different worker or payload is different work."""
    return cell_wire_digest([worker_name, payload_digest, cell_wire])


def call_key(worker_name: str, payload_digest: str, keys: list) -> str:
    """Content address of one whole ``map_cells`` call (its ordered cell
    keys) — what a ``done`` sentinel refers to."""
    return cell_wire_digest([worker_name, payload_digest, list(keys)])


class CellCheckpoint:
    """One open checkpoint journal: replayed on construction, appended as
    cells complete.  Thread-safe (the distributed executor records from
    its host threads).

    ``resume=False`` (the default) refuses to open a non-empty journal —
    silently mixing two campaigns' results would be worse than failing —
    so resuming is always an explicit ``--resume``.
    """

    def __init__(self, path: PathLike, *, resume: bool = False) -> None:
        self.path = Path(path)
        self.results: dict = {}
        self.done_calls: set = set()
        self.n_replayed = 0
        self.n_recorded = 0
        self._lock = threading.Lock()
        if self.path.exists() and self.path.stat().st_size > 0:
            if not resume:
                raise CheckpointError(
                    f"checkpoint {self.path} already exists; pass "
                    f"resume=True (memsched experiment --resume) to "
                    f"continue it, or remove the file to start over")
            self._replay()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")

    def _replay(self) -> None:
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                row = journal_decode(line)
                if row is None:      # torn write / bad CRC: re-execute
                    continue
                op = row.get("op")
                if op == "cell" and isinstance(row.get("k"), str) \
                        and "r" in row:
                    self.results[row["k"]] = row["r"]
                    self.n_replayed += 1
                elif op == "done" and isinstance(row.get("call"), str):
                    self.done_calls.add(row["call"])

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _append(self, row: dict) -> None:
        line = journal_encode(row)
        injector = faults.active()
        if injector is not None and injector.fire(
                "journal.corrupt", injector.plan.corrupt,
                injector.plan.corrupt_limit):
            line = line[:max(1, len(line) // 2)]   # torn write
        st = obs.active()
        if st is None:
            self._fh.write(line + "\n")
            self._fh.flush()
            return
        t0 = time.perf_counter()
        self._fh.write(line + "\n")
        self._fh.flush()
        st.registry.histogram("memsched_checkpoint_write_seconds").observe(
            time.perf_counter() - t0)

    def record(self, key: str, result_wire: object) -> None:
        """Journal one completed cell (flushed: survives coordinator
        ``kill -9``).  Re-recording a known key is a no-op — results are
        content-addressed, equal keys mean equal values."""
        injector = faults.active()
        with self._lock:
            if key not in self.results:
                self.results[key] = result_wire
                self._append({"op": "cell", "k": key, "r": result_wire})
                self.n_recorded += 1
                if injector is not None \
                        and injector.crash_due(self.n_recorded):
                    self._fh.flush()
                    os.fsync(self._fh.fileno())
                    os._exit(137)   # the deterministic kill -9 stand-in

    def mark_done(self, ck: str, n: int) -> None:
        """Journal a whole call's completion sentinel."""
        with self._lock:
            if ck not in self.done_calls:
                self.done_calls.add(ck)
                self._append({"op": "done", "call": ck, "n": int(n)})

    def get(self, key: str, default=None):
        with self._lock:
            return self.results.get(key, default)

    def is_done(self, ck: str) -> bool:
        with self._lock:
            return ck in self.done_calls

    def stats(self) -> dict:
        with self._lock:
            return {"path": str(self.path),
                    "cells": len(self.results),
                    "replayed": self.n_replayed,
                    "recorded": self.n_recorded,
                    "done_calls": len(self.done_calls)}

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "CellCheckpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# ambient checkpoint (mirrors engine.set_default_hosts / remote_hosts)
# ----------------------------------------------------------------------
@contextmanager
def checkpointing(path_or_ckpt: Union[PathLike, CellCheckpoint], *,
                  resume: bool = False):
    """Make every :func:`~repro.experiments.engine.map_cells` call inside
    the block journal to (and resume from) one checkpoint — how whole
    experiment drivers gain crash recovery with zero signature changes
    (``memsched experiment fig12 --checkpoint ck.jsonl [--resume]`` wraps
    the driver call in exactly this).  Yields the shared
    :class:`CellCheckpoint` for :meth:`~CellCheckpoint.stats`."""
    from .engine import set_default_checkpoint

    owned = not isinstance(path_or_ckpt, CellCheckpoint)
    ckpt = (CellCheckpoint(path_or_ckpt, resume=resume) if owned
            else path_or_ckpt)
    previous = set_default_checkpoint(ckpt)
    try:
        yield ckpt
    finally:
        set_default_checkpoint(previous)
        if owned:
            ckpt.close()


def payload_digest(payload_wire: object) -> str:
    """Digest of a wire-encoded payload (shared with the /cells service
    path's per-process payload cache keying)."""
    import hashlib
    return hashlib.sha256(
        canonical_json(payload_wire).encode("utf-8")).hexdigest()
