"""Schedule quality metrics beyond the makespan.

The paper evaluates makespan and memory peaks; downstream users usually
also want utilisation and transfer volume when comparing schedules, so
:func:`schedule_stats` collects everything in one pass (peaks come from
the independent validator replay, not the scheduler's own accounting).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bounds import lower_bound
from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.validation import memory_peaks


@dataclass(frozen=True)
class ScheduleStats:
    """Aggregate quality metrics of one schedule."""

    makespan: float
    peak_blue: float    # class-0 peak on k-memory platforms
    peak_red: float     # class-1 peak (0 on single-memory platforms)
    #: Mean busy fraction over all processors, within the makespan.
    utilization: float
    #: Busy fraction of the busiest processor.
    max_utilization: float
    #: Number of cross-memory transfers.
    n_transfers: int
    #: Total size transferred between the memories.
    transfer_volume: float
    #: makespan / combinatorial lower bound (>= 1; 1 means provably optimal).
    optimality_ratio: float
    #: Per-class memory peaks, one entry per memory class (k-ary form of
    #: ``peak_blue``/``peak_red``).
    peaks: tuple[float, ...] = ()

    def as_row(self) -> list:
        """Flat row for the report tables."""
        return [round(self.makespan, 2), round(self.peak_blue, 2),
                round(self.peak_red, 2), round(self.utilization, 3),
                self.n_transfers, round(self.transfer_volume, 2),
                round(self.optimality_ratio, 3)]


STATS_HEADERS = ["makespan", "peak_blue", "peak_red", "util",
                 "transfers", "volume", "mk/LB"]


def schedule_stats(graph: TaskGraph, platform: Platform,
                   schedule: Schedule) -> ScheduleStats:
    """Compute :class:`ScheduleStats` for a complete schedule."""
    span = schedule.makespan
    peaks = memory_peaks(graph, platform, schedule)
    if span > 0:
        busy = [schedule.proc_busy_time(p) / span
                for p in range(platform.n_procs)]
    else:
        busy = [0.0] * platform.n_procs
    volume = 0.0
    for ev in schedule.comms():
        volume += graph.size(ev.src, ev.dst)
    lb = lower_bound(graph, platform)
    peak_list = tuple(peaks[m] for m in platform.memories())
    return ScheduleStats(
        makespan=span,
        peak_blue=peak_list[0],
        peak_red=peak_list[1] if len(peak_list) > 1 else 0.0,
        utilization=sum(busy) / len(busy) if busy else 0.0,
        max_utilization=max(busy, default=0.0),
        n_transfers=schedule.n_comms,
        transfer_volume=volume,
        optimality_ratio=span / lb if lb > 0 else float("inf"),
        peaks=peak_list,
    )
