"""Per-figure experiment drivers (§6.2).

Each ``figN`` function regenerates the series behind one figure of the
paper's evaluation and returns a :class:`FigureResult` whose ``text`` is the
rendered table.  Benchmarks (``benchmarks/bench_figN_*.py``) and the CLI
(``memsched experiment figN``) are thin wrappers around these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.platform import Platform
from ..dags.datasets import (
    large_rand_set,
    small_rand_set,
    tiny_rand_set,
)
from ..dags.linalg import (
    DEFAULT_GPU_SPEEDUP,
    KERNEL_TIMES_MS,
    cholesky_dag,
    lu_dag,
)
from ..ilp import solve_ilp
from .config import Scale, get_scale
from .report import (
    render_absolute_sweep,
    render_heterogeneity_sweep,
    render_normalized_sweep,
    render_table,
)
from .sweep import (
    absolute_sweep,
    default_alphas,
    default_spreads,
    heterogeneity_sweep,
    normalized_sweep,
    reference_run,
)

#: Figures 10-13 use one processor per memory (as the paper's toy and
#: SmallRandSet discussion); Figures 14-15 use the *mirage* platform of
#: §6.1.2 (12 CPU cores + 3 GPUs).
RAND_PLATFORM = Platform(n_blue=1, n_red=1)
MIRAGE_PLATFORM = Platform(n_blue=12, n_red=3)


@dataclass
class FigureResult:
    """One regenerated table/figure."""

    figure_id: str
    title: str
    text: str
    data: object
    notes: list[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        out = [f"== {self.figure_id}: {self.title} ==", self.text]
        out += [f"note: {n}" for n in self.notes]
        return "\n".join(out)


def table1(scale: Optional[Scale] = None, *, check: bool = False,
           jobs: int = 1) -> FigureResult:
    """Table 1: kernel running times (+ our blue/red split, DESIGN.md §5).

    ``scale``/``check``/``jobs`` are accepted for driver-signature
    uniformity; the table is constant input data, not a measurement.
    """
    headers = ["kernel", "paper_ms", "w_blue (CPU)", "w_red (GPU)", "gpu_speedup"]
    rows = []
    for kernel, ms in KERNEL_TIMES_MS.items():
        sp = DEFAULT_GPU_SPEEDUP[kernel]
        rows.append([kernel, ms, ms, round(ms / sp, 1), sp])
    text = render_table(headers, rows)
    return FigureResult(
        "table1", "Average kernel performance on a 192x192 tile (ms)", text,
        data=dict(KERNEL_TIMES_MS),
        notes=["paper gives one time per kernel; blue = paper time, "
               "red = blue / per-kernel GPU speedup (see DESIGN.md §5)"])


def fig10(scale: Optional[Scale] = None, *, check: bool = False,
          jobs: int = 1) -> FigureResult:
    """Figure 10: SmallRandSet — normalised makespan + success rate vs alpha.

    Heuristic series on SmallRandSet; the "optimal" series is computed on
    TinyRandSet, the largest family our branch-and-bound ILP solves to
    optimality (CPLEX substitution; see DESIGN.md §5).
    """
    scale = scale or get_scale()
    graphs = small_rand_set(scale.small_n_graphs, scale.small_size)
    alphas = default_alphas(scale.n_alphas)
    heur = normalized_sweep(graphs, RAND_PLATFORM, alphas=alphas, check=check,
                            jobs=jobs)
    text = render_normalized_sweep(
        heur, title=f"SmallRandSet ({len(graphs)} DAGs x {scale.small_size} tasks)")

    tiny = tiny_rand_set(scale.tiny_n_graphs, scale.tiny_size)

    def ilp_solver(graph, bounded_platform) -> Optional[float]:
        sol = solve_ilp(graph, bounded_platform,
                        node_limit=scale.ilp_node_limit,
                        time_limit=scale.ilp_time_limit)
        return sol.makespan

    opt = normalized_sweep(tiny, RAND_PLATFORM, alphas=alphas, check=check,
                           extra_solver=ilp_solver, jobs=jobs)
    text += "\n\n" + render_normalized_sweep(
        opt, title=f"TinyRandSet with ILP optimum ({len(tiny)} DAGs x "
                   f"{scale.tiny_size} tasks)")
    return FigureResult(
        "fig10", "SmallRandSet: heuristics vs optimal under relative memory",
        text, data={"heuristics": heur, "optimal": opt},
        notes=["paper's optimal series used CPLEX on 30-task DAGs; our B&B "
               "proves optimality on the tiny set only (DESIGN.md §5)"])


def _absolute_grid(ref_memory: float, n: int = 12) -> list[float]:
    """Absolute memory grid from ~0 up to the HEFT requirement."""
    return [float(x) for x in np.linspace(ref_memory / n, ref_memory, n)]


def fig11(scale: Optional[Scale] = None, *, check: bool = False,
          jobs: int = 1) -> FigureResult:
    """Figure 11: makespan vs memory for one SmallRandSet DAG."""
    scale = scale or get_scale()
    graph = small_rand_set(1, scale.small_size)[0]
    ref = reference_run(graph, RAND_PLATFORM)
    grid = _absolute_grid(ref.ref_memory)
    res = absolute_sweep(graph, RAND_PLATFORM, grid, check=check, jobs=jobs)
    text = render_absolute_sweep(res, title=f"DAG {graph.name} "
                                            f"({graph.n_tasks} tasks)")
    return FigureResult("fig11",
                        "Makespan vs memory, single small random DAG",
                        text, data=res)


def fig12(scale: Optional[Scale] = None, *, check: bool = False,
          jobs: int = 1) -> FigureResult:
    """Figure 12: LargeRandSet — normalised makespan + success rate vs alpha."""
    scale = scale or get_scale()
    graphs = large_rand_set(scale.large_n_graphs, scale.large_size)
    alphas = default_alphas(scale.n_alphas)
    res = normalized_sweep(graphs, RAND_PLATFORM, alphas=alphas, check=check,
                           jobs=jobs)
    text = render_normalized_sweep(
        res, title=f"LargeRandSet ({len(graphs)} DAGs x {scale.large_size} tasks)")
    notes = []
    if scale.name != "paper":
        notes.append("paper scale is 100 DAGs x 1000 tasks; "
                     "set REPRO_SCALE=paper to match")
    return FigureResult("fig12", "LargeRandSet under relative memory",
                        text, data=res, notes=notes)


def fig13(scale: Optional[Scale] = None, *, check: bool = False,
          jobs: int = 1) -> FigureResult:
    """Figure 13: makespan vs memory for one LargeRandSet DAG."""
    scale = scale or get_scale()
    graph = large_rand_set(1, scale.large_size)[0]
    ref = reference_run(graph, RAND_PLATFORM)
    grid = _absolute_grid(ref.ref_memory)
    res = absolute_sweep(graph, RAND_PLATFORM, grid, check=check, jobs=jobs)
    text = render_absolute_sweep(res, title=f"DAG {graph.name} "
                                            f"({graph.n_tasks} tasks)")
    return FigureResult("fig13", "Makespan vs memory, single large random DAG",
                        text, data=res)


def fig14(scale: Optional[Scale] = None, *, check: bool = False,
          jobs: int = 1) -> FigureResult:
    """Figure 14: tiled LU factorisation, makespan vs memory (in tiles)."""
    scale = scale or get_scale()
    graph = lu_dag(scale.lu_tiles)
    ref = reference_run(graph, MIRAGE_PLATFORM)
    grid = _absolute_grid(ref.ref_memory)
    res = absolute_sweep(graph, MIRAGE_PLATFORM, grid, check=check, jobs=jobs)
    text = render_absolute_sweep(
        res, title=f"LU {scale.lu_tiles}x{scale.lu_tiles} tiles "
                   f"({graph.n_tasks} tasks), memory in tiles")
    notes = [f"matrix holds {scale.lu_tiles ** 2} tiles"]
    if scale.name != "paper":
        notes.append("paper uses 13x13 tiles; set REPRO_SCALE=paper to match")
    return FigureResult("fig14", "LU factorisation makespan vs memory",
                        text, data=res, notes=notes)


def fig15(scale: Optional[Scale] = None, *, check: bool = False,
          jobs: int = 1) -> FigureResult:
    """Figure 15: tiled Cholesky factorisation, makespan vs memory (tiles)."""
    scale = scale or get_scale()
    graph = cholesky_dag(scale.cholesky_tiles)
    ref = reference_run(graph, MIRAGE_PLATFORM)
    grid = _absolute_grid(ref.ref_memory)
    res = absolute_sweep(graph, MIRAGE_PLATFORM, grid, check=check, jobs=jobs)
    t = scale.cholesky_tiles
    text = render_absolute_sweep(
        res, title=f"Cholesky {t}x{t} tiles ({graph.n_tasks} tasks), "
                   f"memory in tiles")
    notes = [f"lower half of the matrix holds {t * (t + 1) // 2} tiles"]
    if scale.name != "paper":
        notes.append("paper uses 13x13 tiles; set REPRO_SCALE=paper to match")
    return FigureResult("fig15", "Cholesky factorisation makespan vs memory",
                        text, data=res, notes=notes)


#: The heterogeneity axis runs on a multi-processor hybrid platform (the
#: speed spread is invisible on Figures 10-13's one-proc-per-class shape).
HETERO_PLATFORM = Platform(n_blue=4, n_red=2)


def hetero(scale: Optional[Scale] = None, *, check: bool = False,
           jobs: int = 1) -> FigureResult:
    """Heterogeneity axis (beyond the paper): speed-spread sweep.

    Daggen graphs on a 4 CPU + 2 GPU platform whose per-class processor
    speeds are spread over ``[1 - alpha, 1 + alpha]``; ``alpha = 0`` is
    the paper's homogeneous model, reported as the per-heuristic
    normalisation baseline.
    """
    scale = scale or get_scale()
    graphs = small_rand_set(scale.small_n_graphs, scale.small_size)
    spreads = default_spreads(scale.n_alphas)
    res = heterogeneity_sweep(graphs, HETERO_PLATFORM, spreads=spreads,
                              check=check, jobs=jobs)
    text = render_heterogeneity_sweep(
        res, title=f"SmallRandSet ({len(graphs)} DAGs x {scale.small_size} "
                   f"tasks) on {HETERO_PLATFORM.n_blue}+"
                   f"{HETERO_PLATFORM.n_red} procs, unbounded memory")
    return FigureResult(
        "hetero", "Speed-spread sweep on a heterogeneous hybrid platform",
        text, data=res,
        notes=["not a paper figure: per-processor speeds generalise the "
               "platform model (spread 0 = the paper's setting)"])


#: All drivers by experiment id (CLI dispatch).
EXPERIMENTS = {
    "table1": table1,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "hetero": hetero,
}
