"""ASCII rendering of experiment results (the library has no plotting
dependency; every figure is reported as the table of its series)."""

from __future__ import annotations

from typing import Optional, Sequence

from .._util import fmt_num
from .sweep import AbsoluteSweepResult, HeterogeneitySweepResult, SweepResult


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Minimal fixed-width table renderer."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[k]) for r in cells) for k in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return fmt_num(value)
    return str(value)


def sweep_to_csv(result: SweepResult) -> str:
    """Normalised sweep as CSV (one row per alpha x algorithm cell)."""
    lines = ["alpha,algorithm,n_graphs,n_success,success_rate,mean_norm_makespan"]
    for cell in result.cells:
        mk = "" if cell.mean_norm_makespan is None else f"{cell.mean_norm_makespan:.6g}"
        lines.append(f"{cell.alpha:.6g},{cell.algorithm},{cell.n_graphs},"
                     f"{cell.n_success},{cell.success_rate:.6g},{mk}")
    return "\n".join(lines) + "\n"


def absolute_to_csv(result: AbsoluteSweepResult) -> str:
    """Absolute sweep as CSV (plus the baseline/lower-bound constants)."""
    lines = ["memory,algorithm,makespan"]
    for p in sorted(result.points, key=lambda p: (p.algorithm, p.memory)):
        mk = "" if p.makespan is None else f"{p.makespan:.6g}"
        lines.append(f"{p.memory:.6g},{p.algorithm},{mk}")
    lines.append(f"{result.heft_memory:.6g},heft,{result.heft_makespan:.6g}")
    lines.append(f"{result.minmin_memory:.6g},minmin,{result.minmin_makespan:.6g}")
    lines.append(f"0,lower_bound,{result.lower_bound:.6g}")
    return "\n".join(lines) + "\n"


def render_normalized_sweep(result: SweepResult, title: str = "") -> str:
    """Figure 10/12-style table: one row per alpha, per-algorithm columns
    (normalised makespan and success rate)."""
    headers = ["alpha"]
    for name in result.algorithms:
        headers += [f"{name}:norm_mk", f"{name}:success"]
    rows = []
    for alpha in result.alphas:
        row: list[object] = [round(alpha, 4)]
        for name in result.algorithms:
            cell = result.cell(alpha, name)
            row.append(None if cell.mean_norm_makespan is None
                       else round(cell.mean_norm_makespan, 3))
            row.append(round(cell.success_rate, 3))
        rows.append(row)
    return render_table(headers, rows, title=title)


def heterogeneity_to_csv(result: HeterogeneitySweepResult) -> str:
    """Heterogeneity sweep as CSV (one row per spread x algorithm cell)."""
    lines = ["spread,algorithm,n_graphs,n_success,mean_makespan,"
             "mean_ratio_to_homogeneous"]
    for cell in result.cells:
        mk = "" if cell.mean_makespan is None else f"{cell.mean_makespan:.6g}"
        rt = ("" if cell.mean_ratio_to_homogeneous is None
              else f"{cell.mean_ratio_to_homogeneous:.6g}")
        lines.append(f"{cell.spread:.6g},{cell.algorithm},{cell.n_graphs},"
                     f"{cell.n_success},{mk},{rt}")
    return "\n".join(lines) + "\n"


def render_heterogeneity_sweep(result: HeterogeneitySweepResult,
                               title: str = "") -> str:
    """Speed-spread table: one row per spread, per-algorithm columns (mean
    makespan and its ratio to the same heuristic's homogeneous run)."""
    headers = ["spread"]
    for name in result.algorithms:
        headers += [f"{name}:mean_mk", f"{name}:vs_hom"]
    rows = []
    for spread in result.spreads:
        row: list[object] = [round(spread, 4)]
        for name in result.algorithms:
            cell = result.cell(spread, name)
            row.append(None if cell.mean_makespan is None
                       else round(cell.mean_makespan, 2))
            row.append(None if cell.mean_ratio_to_homogeneous is None
                       else round(cell.mean_ratio_to_homogeneous, 3))
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_absolute_sweep(result: AbsoluteSweepResult, title: str = "") -> str:
    """Figure 11/13/14/15-style table: makespan per memory bound, with the
    memory-oblivious baselines shown from the bound where their peak fits."""
    algos = sorted({p.algorithm for p in result.points})
    headers = ["memory"] + algos + ["heft", "minmin", "lower_bound"]
    rows = []
    for mem in result.memories:
        row: list[object] = [mem]
        for name in algos:
            match = [p.makespan for p in result.points
                     if p.algorithm == name and p.memory == mem]
            row.append(match[0] if match else None)
        row.append(result.heft_makespan if mem >= result.heft_memory else None)
        row.append(result.minmin_makespan if mem >= result.minmin_memory else None)
        row.append(round(result.lower_bound, 2))
        rows.append(row)
    table = render_table(headers, rows, title=title)
    footer = (
        f"\nHEFT needs memory >= {fmt_num(result.heft_memory)} "
        f"(makespan {fmt_num(result.heft_makespan)}); "
        f"MinMin needs >= {fmt_num(result.minmin_memory)} "
        f"(makespan {fmt_num(result.minmin_makespan)})."
    )
    return table + footer
