"""Experiment harness: memory sweeps, per-figure drivers, ablations."""

from .ablation import comm_policy_ablation, tiebreak_ablation
from .config import SCALES, Scale, get_scale
from .figures import (
    EXPERIMENTS,
    MIRAGE_PLATFORM,
    RAND_PLATFORM,
    FigureResult,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    table1,
)
from .metrics import STATS_HEADERS, ScheduleStats, schedule_stats
from .report import (
    absolute_to_csv,
    render_absolute_sweep,
    render_normalized_sweep,
    render_table,
    sweep_to_csv,
)
from .sweep import (
    AbsolutePoint,
    AbsoluteSweepResult,
    ReferenceRun,
    SweepCell,
    SweepResult,
    absolute_sweep,
    default_alphas,
    normalized_sweep,
    reference_run,
)

__all__ = [
    "Scale",
    "SCALES",
    "get_scale",
    "FigureResult",
    "EXPERIMENTS",
    "RAND_PLATFORM",
    "MIRAGE_PLATFORM",
    "table1",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "normalized_sweep",
    "absolute_sweep",
    "default_alphas",
    "reference_run",
    "ReferenceRun",
    "SweepCell",
    "SweepResult",
    "AbsolutePoint",
    "AbsoluteSweepResult",
    "render_table",
    "render_normalized_sweep",
    "render_absolute_sweep",
    "sweep_to_csv",
    "absolute_to_csv",
    "schedule_stats",
    "ScheduleStats",
    "STATS_HEADERS",
    "comm_policy_ablation",
    "tiebreak_ablation",
]
