"""Memory-sweep machinery behind Figures 10–15.

Two sweep styles, mirroring the paper:

* :func:`normalized_sweep` (Figures 10, 12) — for each graph, run
  memory-oblivious HEFT to get its memory peaks; then for each relative
  memory ``alpha`` set both bounds to ``alpha * max(HEFT peaks)`` and record,
  per heuristic, the success rate and the average makespan normalised by the
  HEFT makespan (averaged over successfully scheduled graphs only, as in the
  paper).
* :func:`absolute_sweep` (Figures 11, 13, 14, 15) — one graph, an absolute
  grid of memory bounds, makespan per algorithm per bound; the
  memory-oblivious baselines appear from the bound where their own peak
  fits, and the combinatorial lower bound gives the flat reference line.

A third axis goes beyond the paper:

* :func:`heterogeneity_sweep` — for each *speed spread* ``alpha``, make the
  platform heterogeneous (processor speeds evenly spaced over
  ``[1 - alpha, 1 + alpha]`` inside each class, :func:`spread_speeds`) and
  record, per heuristic, the mean makespan and its ratio to the same
  heuristic's homogeneous (``alpha = 0``) run.  ``alpha = 0`` *is* the
  paper's model, so the axis continuously deforms the reproduced setting
  into mixed-SKU platforms.

All sweeps decompose into independent cells — (graph, alpha) for the
normalised and heterogeneity styles, (bound,) for the absolute one —
executed through :func:`repro.experiments.engine.map_cells`: pass
``jobs=N`` to shard the grid over N processes.  The serial and parallel
paths run the *same* cell functions and aggregate in the same order, so
they return identical results (``tests/experiments/test_engine.py`` pins
this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.bounds import lower_bound
from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..core.validation import validate_schedule
from ..scheduling.heft import heft
from ..scheduling.minmin import minmin
from ..scheduling.registry import get_scheduler
from ..scheduling.state import InfeasibleScheduleError
from ..io.json_io import register_wire_dataclass
from .engine import cached_reference, map_cells, remote_worker


@register_wire_dataclass
@dataclass(frozen=True)
class ReferenceRun:
    """Memory-oblivious HEFT reference for one graph (§6.2.1)."""

    graph: TaskGraph
    makespan: float
    #: HEFT's memory peak per class (any k, not just the dual pair).
    peaks: tuple[float, ...]

    @property
    def peak_blue(self) -> float:
        return self.peaks[0]

    @property
    def peak_red(self) -> float:
        return self.peaks[1] if len(self.peaks) > 1 else 0.0

    @property
    def ref_memory(self) -> float:
        """``max_c M^HEFT_c`` — the alpha = 1 normalisation, over *all*
        memory classes."""
        return max(self.peaks)


def reference_run(graph: TaskGraph, platform: Platform) -> ReferenceRun:
    """Run memory-oblivious HEFT and harvest makespan + memory peaks."""
    schedule = heft(graph, platform)
    return ReferenceRun(
        graph=graph,
        makespan=schedule.makespan,
        peaks=tuple(schedule.meta["peaks"]),
    )


@dataclass
class SweepCell:
    """Aggregated result of one (alpha, algorithm) grid point."""

    alpha: float
    algorithm: str
    n_graphs: int
    n_success: int
    mean_norm_makespan: Optional[float]  # None when nothing scheduled

    @property
    def success_rate(self) -> float:
        return self.n_success / self.n_graphs if self.n_graphs else 0.0


@dataclass
class SweepResult:
    """Full grid of a normalised sweep (rows of Figure 10 / 12)."""

    algorithms: tuple[str, ...]
    alphas: tuple[float, ...]
    cells: list[SweepCell] = field(default_factory=list)
    #: Exact-key lookup index, rebuilt lazily when ``cells`` grows.
    _index: dict = field(default_factory=dict, init=False, repr=False,
                         compare=False)

    def cell(self, alpha: float, algorithm: str) -> SweepCell:
        if len(self._index) != len(self.cells):
            self._index = {(c.alpha, c.algorithm): c for c in self.cells}
        found = self._index.get((alpha, algorithm))
        if found is not None:
            return found
        # Tolerance fallback for callers that recompute alphas.
        for c in self.cells:
            if c.algorithm == algorithm and math.isclose(c.alpha, alpha):
                return c
        raise KeyError((alpha, algorithm))

    def series(self, algorithm: str) -> list[SweepCell]:
        return sorted((c for c in self.cells if c.algorithm == algorithm),
                      key=lambda c: c.alpha)


def default_alphas(n: int = 10) -> tuple[float, ...]:
    """Evenly spaced relative-memory grid in ``(0, 1]``."""
    return tuple(float(a) for a in np.linspace(1.0 / n, 1.0, n))


@remote_worker("sweep.normalized")
def _normalized_cell(payload: tuple, cache: dict,
                     cell: tuple) -> list[Optional[float]]:
    """One (graph, alpha) cell: per algorithm, the normalised makespan or
    ``None`` when infeasible at this bound."""
    graphs, platform, algorithms, check, refs = payload
    graph_idx, alpha = cell
    ref = cached_reference(cache, graphs, platform, graph_idx, refs)
    bounded = platform.with_uniform_bound(alpha * ref.ref_memory)
    out: list[Optional[float]] = []
    for name in algorithms:
        try:
            schedule = get_scheduler(name)(ref.graph, bounded)
        except InfeasibleScheduleError:
            out.append(None)
            continue
        if check:
            validate_schedule(ref.graph, bounded, schedule)
        out.append(schedule.makespan / ref.makespan)
    return out


def normalized_sweep(
    graphs: Sequence[TaskGraph],
    platform: Platform,
    algorithms: Sequence[str] = ("memheft", "memminmin"),
    alphas: Optional[Sequence[float]] = None,
    *,
    check: bool = False,
    extra_solver: Optional[
        Callable[[TaskGraph, Platform], Optional[float]]
    ] = None,
    extra_name: str = "optimal",
    jobs: int = 1,
    chunk_size: Optional[int] = None,
) -> SweepResult:
    """Normalised-memory sweep over a set of graphs (Figures 10 and 12).

    ``jobs`` shards the (graph, alpha) grid over that many worker
    processes (``jobs=1``: in-process; ``jobs<=0``: one per CPU); the
    result is identical for any jobs value.
    ``extra_solver`` optionally adds one more series (the ILP optimum in
    Figure 10): a callable returning a makespan or ``None`` when it cannot
    schedule within the bounds.  It runs in-process (solver callables are
    generally not picklable), after the sharded heuristic grid.
    ``check=True`` re-validates every produced schedule with the independent
    validator (slower; used by integration tests).
    """
    alphas = tuple(alphas) if alphas is not None else default_alphas()
    algorithms = tuple(algorithms)
    names = algorithms + ((extra_name,) if extra_solver else ())
    result = SweepResult(algorithms=names, alphas=alphas)

    # With an extra (in-process) solver series the reference runs are
    # needed here anyway — compute them once and ship them to the workers
    # instead of letting every process redo the HEFT baselines.
    refs = (tuple(reference_run(g, platform) for g in graphs)
            if extra_solver is not None else None)

    # Graph-major cell order keeps one graph's cells contiguous, so each
    # chunk — and hence (mostly) one worker process — computes that
    # graph's reference run; alpha-major order would make every process
    # redo nearly every reference.  Aggregation below indexes by cell, so
    # the order does not affect the result.
    cells = [(gi, alpha) for gi in range(len(graphs)) for alpha in alphas]
    payload = (tuple(graphs), platform, algorithms, check, refs)
    rows = map_cells(_normalized_cell, payload, cells,
                     jobs=jobs, chunk_size=chunk_size)
    cell_of = dict(zip(cells, rows))

    extra_scores: dict[tuple[int, float], Optional[float]] = {}
    if extra_solver is not None:
        for alpha in alphas:
            for gi, ref in enumerate(refs):
                bounded = platform.with_uniform_bound(alpha * ref.ref_memory)
                span = extra_solver(ref.graph, bounded)
                extra_scores[(gi, alpha)] = (
                    None if span is None else span / ref.makespan)

    for alpha in alphas:
        scores: dict[str, list[float]] = {name: [] for name in names}
        for gi in range(len(graphs)):
            row = cell_of[(gi, alpha)]
            for name, norm in zip(algorithms, row):
                if norm is not None:
                    scores[name].append(norm)
            if extra_solver is not None:
                norm = extra_scores[(gi, alpha)]
                if norm is not None:
                    scores[extra_name].append(norm)
        for name in names:
            vals = scores[name]
            result.cells.append(SweepCell(
                alpha=alpha,
                algorithm=name,
                n_graphs=len(graphs),
                n_success=len(vals),
                mean_norm_makespan=float(np.mean(vals)) if vals else None,
            ))
    return result


# ----------------------------------------------------------------------
# heterogeneity (speed spread) sweeps
# ----------------------------------------------------------------------
def spread_speeds(platform: Platform, spread: float) -> Platform:
    """Heterogeneous copy of ``platform`` with speed spread ``spread``.

    Inside each memory class the processor speeds are evenly spaced over
    ``[1 - spread, 1 + spread]``, fastest first (the class's mean speed
    stays 1.0, so total processing capacity is preserved and results stay
    comparable across spreads).  Single-processor classes and
    ``spread = 0`` stay at speed 1.0 — the returned platform is then
    homogeneous and serializes/hashes exactly like the input.
    """
    if not 0.0 <= spread < 1.0:
        raise ValueError(f"speed spread must be in [0, 1), got {spread}")
    speeds: list[float] = []
    for n in platform.proc_counts:
        for j in range(n):
            if n == 1 or spread == 0.0:
                speeds.append(1.0)
            else:
                speeds.append(1.0 + spread * (1.0 - 2.0 * j / (n - 1)))
    return platform.with_speeds(speeds)


def default_spreads(n: int = 5) -> tuple[float, ...]:
    """Evenly spaced speed-spread grid ``[0, ..., 0.8]`` (0 = the paper's
    homogeneous model)."""
    return tuple(float(a) for a in np.linspace(0.0, 0.8, n))


@dataclass
class HeterogeneityCell:
    """Aggregated result of one (spread, algorithm) grid point."""

    spread: float
    algorithm: str
    n_graphs: int
    n_success: int
    mean_makespan: Optional[float]      # None when nothing scheduled
    #: Mean of makespan(spread) / makespan(0) over graphs where both runs
    #: succeeded — the cost (or gain) of heterogeneity for this heuristic.
    mean_ratio_to_homogeneous: Optional[float]

    @property
    def success_rate(self) -> float:
        return self.n_success / self.n_graphs if self.n_graphs else 0.0


@dataclass
class HeterogeneitySweepResult:
    """Full grid of a heterogeneity sweep."""

    algorithms: tuple[str, ...]
    spreads: tuple[float, ...]
    cells: list[HeterogeneityCell] = field(default_factory=list)

    def cell(self, spread: float, algorithm: str) -> HeterogeneityCell:
        for c in self.cells:
            if c.algorithm == algorithm and (c.spread == spread
                                             or math.isclose(c.spread, spread)):
                return c
        raise KeyError((spread, algorithm))

    def series(self, algorithm: str) -> list[HeterogeneityCell]:
        return sorted((c for c in self.cells if c.algorithm == algorithm),
                      key=lambda c: c.spread)


@remote_worker("sweep.heterogeneity")
def _heterogeneity_cell(payload: tuple, cache: dict,
                        cell: tuple) -> list[Optional[tuple[float, float]]]:
    """One (graph, spread) cell: per algorithm, ``(makespan, baseline
    makespan at spread 0)`` or ``None`` when infeasible."""
    graphs, platform, algorithms, check = payload
    graph_idx, spread = cell
    graph = graphs[graph_idx]
    hetero = spread_speeds(platform, spread)
    out: list[Optional[tuple[float, float]]] = []
    for name in algorithms:
        base_key = ("hetero-base", graph_idx, name)
        base = cache.get(base_key, -1.0)
        if base == -1.0:
            try:
                base = get_scheduler(name)(graph, platform).makespan
            except InfeasibleScheduleError:
                base = None
            cache[base_key] = base
        if not hetero.is_heterogeneous:
            # spread 0: the "hetero" platform equals the baseline one, so
            # rescheduling would redo the exact same run — reuse it.
            out.append(None if base is None else (base, base))
            continue
        try:
            schedule = get_scheduler(name)(graph, hetero)
        except InfeasibleScheduleError:
            out.append(None)
            continue
        if check:
            validate_schedule(graph, hetero, schedule)
        out.append((schedule.makespan, base))
    return out


def heterogeneity_sweep(
    graphs: Sequence[TaskGraph],
    platform: Platform,
    algorithms: Sequence[str] = ("memheft", "memminmin"),
    spreads: Optional[Sequence[float]] = None,
    *,
    check: bool = False,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
) -> HeterogeneitySweepResult:
    """Speed-spread sweep over a set of graphs.

    For every spread ``alpha`` the platform's processor speeds are spread
    over ``[1 - alpha, 1 + alpha]`` per class (:func:`spread_speeds`;
    capacities untouched) and each algorithm is run on every graph.
    ``jobs`` shards the (graph, spread) grid over worker processes;
    identical results for any value.  ``check=True`` re-validates every
    schedule with the independent (speed-aware) validator.
    """
    spreads = (tuple(float(s) for s in spreads) if spreads is not None
               else default_spreads())
    algorithms = tuple(algorithms)
    result = HeterogeneitySweepResult(algorithms=algorithms, spreads=spreads)

    # Graph-major order: one graph's cells stay contiguous, so each chunk
    # mostly reuses its process's cached homogeneous baselines.
    cells = [(gi, spread) for gi in range(len(graphs)) for spread in spreads]
    payload = (tuple(graphs), platform, algorithms, check)
    rows = map_cells(_heterogeneity_cell, payload, cells,
                     jobs=jobs, chunk_size=chunk_size)
    cell_of = dict(zip(cells, rows))

    for spread in spreads:
        for name_i, name in enumerate(algorithms):
            spans: list[float] = []
            ratios: list[float] = []
            for gi in range(len(graphs)):
                entry = cell_of[(gi, spread)][name_i]
                if entry is None:
                    continue
                span, base = entry
                spans.append(span)
                if base is not None and base > 0.0:
                    ratios.append(span / base)
            result.cells.append(HeterogeneityCell(
                spread=spread,
                algorithm=name,
                n_graphs=len(graphs),
                n_success=len(spans),
                mean_makespan=float(np.mean(spans)) if spans else None,
                mean_ratio_to_homogeneous=(float(np.mean(ratios))
                                           if ratios else None),
            ))
    return result


@dataclass
class AbsolutePoint:
    """One (memory bound, algorithm) point of an absolute sweep."""

    memory: float
    algorithm: str
    makespan: Optional[float]  # None => infeasible at this bound


@dataclass
class AbsoluteSweepResult:
    """Rows of Figures 11/13/14/15 for a single graph."""

    graph_name: str
    memories: tuple[float, ...]
    points: list[AbsolutePoint]
    heft_makespan: float
    heft_memory: float
    minmin_makespan: float
    minmin_memory: float
    lower_bound: float

    def series(self, algorithm: str) -> list[AbsolutePoint]:
        return sorted((p for p in self.points if p.algorithm == algorithm),
                      key=lambda p: p.memory)

    def min_feasible_memory(self, algorithm: str) -> Optional[float]:
        """Smallest swept bound where ``algorithm`` produced a schedule."""
        feasible = [p.memory for p in self.series(algorithm) if p.makespan is not None]
        return min(feasible) if feasible else None


@remote_worker("sweep.absolute")
def _absolute_cell(payload: tuple, cache: dict,
                   bound: float) -> list[Optional[float]]:
    """One memory bound of an absolute sweep: makespan per algorithm."""
    graph, platform, algorithms, check = payload
    bounded = platform.with_uniform_bound(bound)
    out: list[Optional[float]] = []
    for name in algorithms:
        try:
            schedule = get_scheduler(name)(graph, bounded)
        except InfeasibleScheduleError:
            out.append(None)
            continue
        if check:
            validate_schedule(graph, bounded, schedule)
        out.append(schedule.makespan)
    return out


def absolute_sweep(
    graph: TaskGraph,
    platform: Platform,
    memories: Sequence[float],
    algorithms: Sequence[str] = ("memheft", "memminmin"),
    *,
    check: bool = False,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
) -> AbsoluteSweepResult:
    """Makespan-vs-memory for one graph (Figures 11, 13, 14, 15).

    ``jobs`` shards the bound grid over worker processes; identical
    results for any value."""
    ref_heft = heft(graph, platform)
    ref_minmin = minmin(graph, platform)
    algorithms = tuple(algorithms)
    payload = (graph, platform, algorithms, check)
    rows = map_cells(_absolute_cell, payload, list(memories),
                     jobs=jobs, chunk_size=chunk_size)
    points = [
        AbsolutePoint(bound, name, span)
        for bound, row in zip(memories, rows)
        for name, span in zip(algorithms, row)
    ]
    return AbsoluteSweepResult(
        graph_name=graph.name,
        memories=tuple(memories),
        points=points,
        heft_makespan=ref_heft.makespan,
        heft_memory=max(ref_heft.meta["peaks"]),
        minmin_makespan=ref_minmin.makespan,
        minmin_memory=max(ref_minmin.meta["peaks"]),
        lower_bound=lower_bound(graph, platform),
    )
