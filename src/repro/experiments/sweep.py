"""Memory-sweep machinery behind Figures 10–15.

Two sweep styles, mirroring the paper:

* :func:`normalized_sweep` (Figures 10, 12) — for each graph, run
  memory-oblivious HEFT to get its memory peaks; then for each relative
  memory ``alpha`` set both bounds to ``alpha * max(HEFT peaks)`` and record,
  per heuristic, the success rate and the average makespan normalised by the
  HEFT makespan (averaged over successfully scheduled graphs only, as in the
  paper).
* :func:`absolute_sweep` (Figures 11, 13, 14, 15) — one graph, an absolute
  grid of memory bounds, makespan per algorithm per bound; the
  memory-oblivious baselines appear from the bound where their own peak
  fits, and the combinatorial lower bound gives the flat reference line.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.bounds import lower_bound
from ..core.graph import TaskGraph
from ..core.platform import Memory, Platform
from ..core.validation import validate_schedule
from ..scheduling.heft import heft
from ..scheduling.minmin import minmin
from ..scheduling.registry import get_scheduler
from ..scheduling.state import InfeasibleScheduleError


@dataclass(frozen=True)
class ReferenceRun:
    """Memory-oblivious HEFT reference for one graph (§6.2.1)."""

    graph: TaskGraph
    makespan: float
    peak_blue: float
    peak_red: float

    @property
    def ref_memory(self) -> float:
        """``max(M^HEFT_blue, M^HEFT_red)`` — the alpha = 1 normalisation."""
        return max(self.peak_blue, self.peak_red)


def reference_run(graph: TaskGraph, platform: Platform) -> ReferenceRun:
    """Run memory-oblivious HEFT and harvest makespan + memory peaks."""
    schedule = heft(graph, platform)
    return ReferenceRun(
        graph=graph,
        makespan=schedule.makespan,
        peak_blue=schedule.meta["peaks"][0],
        peak_red=(schedule.meta["peaks"][1]
                  if len(schedule.meta["peaks"]) > 1 else 0.0),
    )


@dataclass
class SweepCell:
    """Aggregated result of one (alpha, algorithm) grid point."""

    alpha: float
    algorithm: str
    n_graphs: int
    n_success: int
    mean_norm_makespan: Optional[float]  # None when nothing scheduled

    @property
    def success_rate(self) -> float:
        return self.n_success / self.n_graphs if self.n_graphs else 0.0


@dataclass
class SweepResult:
    """Full grid of a normalised sweep (rows of Figure 10 / 12)."""

    algorithms: tuple[str, ...]
    alphas: tuple[float, ...]
    cells: list[SweepCell] = field(default_factory=list)

    def cell(self, alpha: float, algorithm: str) -> SweepCell:
        for c in self.cells:
            if c.algorithm == algorithm and math.isclose(c.alpha, alpha):
                return c
        raise KeyError((alpha, algorithm))

    def series(self, algorithm: str) -> list[SweepCell]:
        return sorted((c for c in self.cells if c.algorithm == algorithm),
                      key=lambda c: c.alpha)


def default_alphas(n: int = 10) -> tuple[float, ...]:
    """Evenly spaced relative-memory grid in ``(0, 1]``."""
    return tuple(float(a) for a in np.linspace(1.0 / n, 1.0, n))


def normalized_sweep(
    graphs: Sequence[TaskGraph],
    platform: Platform,
    algorithms: Sequence[str] = ("memheft", "memminmin"),
    alphas: Optional[Sequence[float]] = None,
    *,
    check: bool = False,
    extra_solver: Optional[
        Callable[[TaskGraph, Platform], Optional[float]]
    ] = None,
    extra_name: str = "optimal",
) -> SweepResult:
    """Normalised-memory sweep over a set of graphs (Figures 10 and 12).

    ``extra_solver`` optionally adds one more series (the ILP optimum in
    Figure 10): a callable returning a makespan or ``None`` when it cannot
    schedule within the bounds.
    ``check=True`` re-validates every produced schedule with the independent
    validator (slower; used by integration tests).
    """
    alphas = tuple(alphas) if alphas is not None else default_alphas()
    refs = [reference_run(g, platform) for g in graphs]
    names = tuple(algorithms) + ((extra_name,) if extra_solver else ())
    result = SweepResult(algorithms=names, alphas=alphas)

    for alpha in alphas:
        scores: dict[str, list[float]] = {name: [] for name in names}
        successes: dict[str, int] = {name: 0 for name in names}
        for ref in refs:
            bound = alpha * ref.ref_memory
            bounded = platform.with_uniform_bound(bound)
            for name in algorithms:
                try:
                    schedule = get_scheduler(name)(ref.graph, bounded)
                except InfeasibleScheduleError:
                    continue
                if check:
                    validate_schedule(ref.graph, bounded, schedule)
                successes[name] += 1
                scores[name].append(schedule.makespan / ref.makespan)
            if extra_solver is not None:
                span = extra_solver(ref.graph, bounded)
                if span is not None:
                    successes[extra_name] += 1
                    scores[extra_name].append(span / ref.makespan)
        for name in names:
            vals = scores[name]
            result.cells.append(SweepCell(
                alpha=alpha,
                algorithm=name,
                n_graphs=len(refs),
                n_success=successes[name],
                mean_norm_makespan=float(np.mean(vals)) if vals else None,
            ))
    return result


@dataclass
class AbsolutePoint:
    """One (memory bound, algorithm) point of an absolute sweep."""

    memory: float
    algorithm: str
    makespan: Optional[float]  # None => infeasible at this bound


@dataclass
class AbsoluteSweepResult:
    """Rows of Figures 11/13/14/15 for a single graph."""

    graph_name: str
    memories: tuple[float, ...]
    points: list[AbsolutePoint]
    heft_makespan: float
    heft_memory: float
    minmin_makespan: float
    minmin_memory: float
    lower_bound: float

    def series(self, algorithm: str) -> list[AbsolutePoint]:
        return sorted((p for p in self.points if p.algorithm == algorithm),
                      key=lambda p: p.memory)

    def min_feasible_memory(self, algorithm: str) -> Optional[float]:
        """Smallest swept bound where ``algorithm`` produced a schedule."""
        feasible = [p.memory for p in self.series(algorithm) if p.makespan is not None]
        return min(feasible) if feasible else None


def absolute_sweep(
    graph: TaskGraph,
    platform: Platform,
    memories: Sequence[float],
    algorithms: Sequence[str] = ("memheft", "memminmin"),
    *,
    check: bool = False,
) -> AbsoluteSweepResult:
    """Makespan-vs-memory for one graph (Figures 11, 13, 14, 15)."""
    ref_heft = heft(graph, platform)
    ref_minmin = minmin(graph, platform)
    points: list[AbsolutePoint] = []
    for bound in memories:
        bounded = platform.with_uniform_bound(bound)
        for name in algorithms:
            try:
                schedule = get_scheduler(name)(graph, bounded)
            except InfeasibleScheduleError:
                points.append(AbsolutePoint(bound, name, None))
                continue
            if check:
                validate_schedule(graph, bounded, schedule)
            points.append(AbsolutePoint(bound, name, schedule.makespan))
    return AbsoluteSweepResult(
        graph_name=graph.name,
        memories=tuple(memories),
        points=points,
        heft_makespan=ref_heft.makespan,
        heft_memory=max(ref_heft.meta["peaks"]),
        minmin_makespan=ref_minmin.makespan,
        minmin_memory=max(ref_minmin.meta["peaks"]),
        lower_bound=lower_bound(graph, platform),
    )
