"""Ablations of the design choices DESIGN.md calls out.

* :func:`comm_policy_ablation` — the paper schedules incoming transfers *as
  late as possible* (§5.1); the ``eager`` variant fires them as early as
  memory allows.  Late transfers keep the destination memory free longer and
  should succeed at tighter bounds.
* :func:`tiebreak_ablation` — the paper breaks rank ties randomly; this
  measures the makespan spread over tie-break seeds (and the deterministic
  order) to show how much of the result is tie-break noise.

Both ablations decompose into independent cells executed through
:func:`repro.experiments.engine.map_cells`; pass ``jobs=N`` to shard them
over N worker processes (identical results for any value).  The tie-break
seeds are derived per cell with :func:`repro.experiments.engine.cell_seed`,
so every (graph, repetition) draws the same randomness under any sharding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.graph import TaskGraph
from ..io.json_io import register_wire_dataclass
from ..core.platform import Platform
from ..scheduling.memheft import memheft
from ..scheduling.state import InfeasibleScheduleError
from .engine import cached_reference, cell_seed, map_cells, remote_worker


@dataclass
class CommPolicyRow:
    alpha: float
    late_success: int
    eager_success: int
    late_mean_norm: Optional[float]
    eager_mean_norm: Optional[float]
    n_graphs: int


_POLICIES = ("late", "eager")


@remote_worker("ablation.comm_policy")
def _comm_policy_cell(payload: tuple, cache: dict,
                      cell: tuple) -> list[Optional[float]]:
    """One (graph, alpha) cell: normalised MemHEFT makespan per transfer
    policy, ``None`` when infeasible."""
    graphs, platform = payload
    graph_idx, alpha = cell
    ref = cached_reference(cache, graphs, platform, graph_idx)
    bounded = platform.with_uniform_bound(alpha * ref.ref_memory)
    out: list[Optional[float]] = []
    for policy in _POLICIES:
        try:
            s = memheft(ref.graph, bounded, comm_policy=policy)
        except InfeasibleScheduleError:
            out.append(None)
            continue
        out.append(s.makespan / ref.makespan)
    return out


def comm_policy_ablation(
    graphs: Sequence[TaskGraph],
    platform: Platform,
    alphas: Sequence[float],
    *,
    jobs: int = 1,
) -> list[CommPolicyRow]:
    """Compare MemHEFT with late vs eager transfer placement."""
    # Graph-major order: one graph's cells stay in one chunk, so its
    # reference run is computed by ~one process (see normalized_sweep).
    cells = [(gi, alpha) for gi in range(len(graphs)) for alpha in alphas]
    rows = map_cells(_comm_policy_cell, (tuple(graphs), platform), cells,
                     jobs=jobs)
    cell_of = dict(zip(cells, rows))
    out: list[CommPolicyRow] = []
    for alpha in alphas:
        stats: dict[str, list[float]] = {p: [] for p in _POLICIES}
        for gi in range(len(graphs)):
            for policy, norm in zip(_POLICIES, cell_of[(gi, alpha)]):
                if norm is not None:
                    stats[policy].append(norm)
        out.append(CommPolicyRow(
            alpha=alpha,
            late_success=len(stats["late"]),
            eager_success=len(stats["eager"]),
            late_mean_norm=float(np.mean(stats["late"])) if stats["late"] else None,
            eager_mean_norm=float(np.mean(stats["eager"])) if stats["eager"] else None,
            n_graphs=len(graphs),
        ))
    return out


@register_wire_dataclass
@dataclass
class TiebreakRow:
    graph_name: str
    deterministic: float
    seeded_mean: float
    seeded_min: float
    seeded_max: float


@remote_worker("ablation.tiebreak")
def _tiebreak_cell(payload: tuple, cache: dict, graph_idx: int) -> TiebreakRow:
    """All repetitions of one graph (the deterministic run plus the seeded
    spread; seeds derived per cell, stable under sharding)."""
    graphs, platform, n_seeds = payload
    graph = graphs[graph_idx]
    det = memheft(graph, platform).makespan
    seeded = [
        memheft(graph, platform,
                rng=cell_seed("tiebreak", graph.name, k)).makespan
        for k in range(n_seeds)
    ]
    return TiebreakRow(
        graph_name=graph.name,
        deterministic=det,
        seeded_mean=float(np.mean(seeded)),
        seeded_min=float(np.min(seeded)),
        seeded_max=float(np.max(seeded)),
    )


def tiebreak_ablation(
    graphs: Sequence[TaskGraph],
    platform: Platform,
    *,
    n_seeds: int = 5,
    jobs: int = 1,
) -> list[TiebreakRow]:
    """Makespan spread of MemHEFT over rank tie-break randomisation."""
    payload = (tuple(graphs), platform, n_seeds)
    return map_cells(_tiebreak_cell, payload, list(range(len(graphs))),
                     jobs=jobs)
