"""Ablations of the design choices DESIGN.md calls out.

* :func:`comm_policy_ablation` — the paper schedules incoming transfers *as
  late as possible* (§5.1); the ``eager`` variant fires them as early as
  memory allows.  Late transfers keep the destination memory free longer and
  should succeed at tighter bounds.
* :func:`tiebreak_ablation` — the paper breaks rank ties randomly; this
  measures the makespan spread over tie-break seeds (and the deterministic
  order) to show how much of the result is tie-break noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..scheduling.memheft import memheft
from ..scheduling.state import InfeasibleScheduleError
from .sweep import reference_run


@dataclass
class CommPolicyRow:
    alpha: float
    late_success: int
    eager_success: int
    late_mean_norm: Optional[float]
    eager_mean_norm: Optional[float]
    n_graphs: int


def comm_policy_ablation(
    graphs: Sequence[TaskGraph],
    platform: Platform,
    alphas: Sequence[float],
) -> list[CommPolicyRow]:
    """Compare MemHEFT with late vs eager transfer placement."""
    refs = [reference_run(g, platform) for g in graphs]
    rows: list[CommPolicyRow] = []
    for alpha in alphas:
        stats = {"late": [], "eager": []}
        for ref in refs:
            bounded = platform.with_uniform_bound(alpha * ref.ref_memory)
            for policy in ("late", "eager"):
                try:
                    s = memheft(ref.graph, bounded, comm_policy=policy)
                except InfeasibleScheduleError:
                    continue
                stats[policy].append(s.makespan / ref.makespan)
        rows.append(CommPolicyRow(
            alpha=alpha,
            late_success=len(stats["late"]),
            eager_success=len(stats["eager"]),
            late_mean_norm=float(np.mean(stats["late"])) if stats["late"] else None,
            eager_mean_norm=float(np.mean(stats["eager"])) if stats["eager"] else None,
            n_graphs=len(refs),
        ))
    return rows


@dataclass
class TiebreakRow:
    graph_name: str
    deterministic: float
    seeded_mean: float
    seeded_min: float
    seeded_max: float


def tiebreak_ablation(
    graphs: Sequence[TaskGraph],
    platform: Platform,
    *,
    n_seeds: int = 5,
) -> list[TiebreakRow]:
    """Makespan spread of MemHEFT over rank tie-break randomisation."""
    rows: list[TiebreakRow] = []
    for graph in graphs:
        det = memheft(graph, platform).makespan
        seeded = [memheft(graph, platform, rng=seed).makespan
                  for seed in range(n_seeds)]
        rows.append(TiebreakRow(
            graph_name=graph.name,
            deterministic=det,
            seeded_mean=float(np.mean(seeded)),
            seeded_min=float(np.min(seeded)),
            seeded_max=float(np.max(seeded)),
        ))
    return rows
