"""Trace JSONL analysis: load, summarise, render (``memsched obs
report``) — and the completeness checks the CI obs leg asserts."""

from __future__ import annotations

import json
from pathlib import Path


def load_trace(path) -> list:
    """Parse a trace JSONL file; malformed lines are skipped (a traced
    process killed mid-write leaves at most one torn line)."""
    events = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(row, dict) and "span" in row and "name" in row:
                events.append(row)
    return events


def summarize(events: list) -> dict:
    """Aggregate a span list: per-name counts and durations, root and
    orphan accounting, per-trace grouping."""
    span_ids = {row["span"] for row in events}
    by_name: dict = {}
    orphans = []
    roots = 0
    traces = set()
    for row in events:
        traces.add(row.get("trace"))
        parent = row.get("parent")
        if parent is None:
            roots += 1
        elif parent not in span_ids:
            orphans.append(row["span"])
        entry = by_name.setdefault(
            row["name"], {"count": 0, "total_dur": 0.0, "max_dur": 0.0})
        entry["count"] += 1
        duration = row.get("dur")
        if duration is not None:
            entry["total_dur"] += duration
            entry["max_dur"] = max(entry["max_dur"], duration)
    return {
        "n_events": len(events),
        "n_traces": len(traces),
        "n_roots": roots,
        "orphans": orphans,
        "by_name": {name: dict(stats, total_dur=round(
            stats["total_dur"], 6), max_dur=round(stats["max_dur"], 6))
            for name, stats in sorted(by_name.items())},
    }


def cell_indices(events: list) -> set:
    """The set of cell indices the trace covers (``cell`` spans carry
    their sweep index as attribute ``i``) — what the CI obs leg compares
    against the sweep size to assert end-to-end reconstruction."""
    out = set()
    for row in events:
        if row["name"] == "cell":
            attrs = row.get("attrs") or {}
            if "i" in attrs:
                out.add(attrs["i"])
    return out


def arrival_indices(events: list) -> set:
    """The set of arrival indices with a per-arrival ``decision`` span
    (attribute ``i`` is the arrival index) — what ``memsched obs report
    --expect-arrivals N`` compares against the stream length to assert
    every arrival's planning decision was traced."""
    out = set()
    for row in events:
        if row["name"] == "decision":
            attrs = row.get("attrs") or {}
            if "i" in attrs:
                out.add(attrs["i"])
    return out


def format_report(summary: dict) -> str:
    """Human rendering of :func:`summarize` (the ``memsched obs report``
    output)."""
    lines = [
        f"trace: {summary['n_events']} spans, "
        f"{summary['n_traces']} trace id(s), "
        f"{summary['n_roots']} root(s), "
        f"{len(summary['orphans'])} orphan(s)",
        "",
        f"{'span':<20} {'count':>7} {'total_s':>10} {'max_s':>10}",
    ]
    for name, stats in summary["by_name"].items():
        lines.append(f"{name:<20} {stats['count']:>7} "
                     f"{stats['total_dur']:>10.4f} "
                     f"{stats['max_dur']:>10.4f}")
    if summary["orphans"]:
        lines.append("")
        lines.append("orphan spans (parent never closed): "
                     + ", ".join(summary["orphans"][:8])
                     + ("..." if len(summary["orphans"]) > 8 else ""))
    return "\n".join(lines)
