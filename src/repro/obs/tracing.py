"""Structured span tracing with sha256-deterministic identifiers.

A :class:`Tracer` writes one JSONL event per finished span.  Timings are
**monotonic** (:func:`time.perf_counter` offsets from the tracer's
epoch) and wall-clock times never appear in span rows, so trace files
stay out of every digest and golden comparison: with tracing on, the
schedules and CSVs a run produces are byte-identical to an untraced run.

Span identifiers follow the repo's sha256 seed machinery (compare
:func:`repro.experiments.engine.cell_seed` and the remote executor's
backoff jitter): an id is the truncated sha256 of
``(trace_id, parent_id, name, key)`` where ``key`` is either a natural
key the caller supplies (a cell index, a ``host:attempt`` pair) or a
per-``(parent, name)`` sibling sequence number.  Ids are therefore a
pure function of trace *structure*, never of time or object identity —
the same run traces to the same ids.

Span nesting is tracked per thread; cross-thread and cross-process
parents are wired explicitly (``parent=`` on :meth:`Tracer.span`, or
the ``X-Trace-Id``/``X-Span-Id`` HTTP headers the service stack
propagates).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from typing import Optional


def det_id(*parts) -> str:
    """16-hex-char deterministic id: truncated sha256 over the repr of
    ``parts`` — the same derivation family as ``engine.cell_seed``."""
    digest = hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()
    return digest[:16]


def trace_id_for(*parts) -> str:
    """A trace id for one logical run, derived from its identity parts
    (subcommand, inputs, ...) — never from the clock."""
    return det_id("trace", *parts)


class Span:
    """One in-flight span; a context manager that emits its JSONL row on
    exit (errors are recorded as an ``error`` attribute, then re-raised).
    """

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "_t0", "_offset")

    def __init__(self, tracer: "Tracer", name: str, attrs: Optional[dict],
                 span_id: str, parent_id: Optional[str]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self._t0 = time.perf_counter()
        self._offset = self._t0 - self.tracer._epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        self.tracer._pop(self)
        attrs = self.attrs
        if exc_type is not None:
            attrs = dict(attrs or ())
            attrs["error"] = exc_type.__name__
        self.tracer.emit(self.name, span_id=self.span_id,
                         parent_id=self.parent_id, t0=self._offset,
                         dur=duration, attrs=attrs)
        return False


class Tracer:
    """One open trace file; thread-safe, append-one-line-per-span."""

    #: Rows buffered in memory before a batched serialise-and-write —
    #: bounds what a killed process can lose while keeping ``emit``
    #: off the JSON encoder on the hot path.
    WRITE_BATCH = 512

    def __init__(self, path, *, trace_id: Optional[str] = None) -> None:
        self.path = str(path)
        self.trace_id = trace_id or trace_id_for(self.path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._local = threading.local()
        self._seq: dict = {}
        self._pending: list = []
        self._epoch = time.perf_counter()
        self.n_events = 0

    # ------------------------------------------------------------------
    # span stack (per thread)
    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current(self) -> Optional[str]:
        """The innermost open span id on *this* thread, or ``None``."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def context(self) -> tuple:
        """``(trace_id, current_span_id_or_None)`` — what the service
        client serialises into ``X-Trace-Id``/``X-Span-Id``."""
        return self.trace_id, self.current()

    # ------------------------------------------------------------------
    # deterministic ids
    # ------------------------------------------------------------------
    def child_id(self, parent_id: Optional[str], name: str,
                 key=None) -> str:
        """The id of a child span of ``parent_id`` named ``name``.  With
        no natural ``key`` a per-``(parent, name)`` sibling counter is
        used — deterministic as long as same-named siblings of one
        parent are opened from a single thread."""
        if key is None:
            with self._lock:
                seq = self._seq.get((parent_id, name), 0)
                self._seq[(parent_id, name)] = seq + 1
            key = seq
        return det_id(self.trace_id, parent_id, name, key)

    # ------------------------------------------------------------------
    # spans and raw events
    # ------------------------------------------------------------------
    def span(self, name: str, attrs: Optional[dict] = None, *,
             parent: Optional[str] = None, key=None) -> Span:
        """Open a span.  ``parent`` defaults to this thread's innermost
        open span; pass it explicitly when crossing threads or hosts."""
        parent_id = parent if parent is not None else self.current()
        return Span(self, name, attrs, self.child_id(parent_id, name, key),
                    parent_id)

    def emit(self, name: str, *, span_id: str,
             parent_id: Optional[str] = None, t0: Optional[float] = None,
             dur: Optional[float] = None,
             attrs: Optional[dict] = None) -> None:
        """Record one span row directly (aggregate phase spans, spans
        reconstructed from remote annotations).  ``attrs`` is kept by
        reference until the batched write — pass a dict you won't
        mutate afterwards.  Serialisation is deferred on purpose: a
        per-span JSON encode (let alone a flush) dominates the cost of
        tracing tight scheduler phases, so rows buffer in memory and
        hit the encoder :data:`WRITE_BATCH` at a time; ``report.
        load_trace`` already tolerates the torn tail a killed process
        leaves behind."""
        row: dict = {"trace": self.trace_id, "span": span_id, "name": name}
        if parent_id is not None:
            row["parent"] = parent_id
        if t0 is not None:
            row["t0"] = round(t0, 6)
        if dur is not None:
            row["dur"] = round(dur, 6)
        if attrs:
            row["attrs"] = attrs
        with self._lock:
            if self._fh is not None:
                self._pending.append(row)
                self.n_events += 1
                if len(self._pending) >= self.WRITE_BATCH:
                    self._write_pending()

    def _write_pending(self) -> None:
        """Serialise and write the buffered rows (caller holds the lock)."""
        if self._pending:
            dumps = json.dumps
            self._fh.write("".join(dumps(row, sort_keys=True) + "\n"
                                   for row in self._pending))
            self._pending.clear()

    def flush(self) -> None:
        """Drain the row buffer to the OS — for long-lived tracers
        (servers) that want the file current between runs."""
        with self._lock:
            if self._fh is not None:
                self._write_pending()
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._write_pending()
                self._fh.close()
                self._fh = None
