"""Process-wide metrics primitives: counters, gauges, histograms.

Zero dependencies and lock-cheap by construction: metric *lookup* is one
dict read on the registry's index (no lock on the hot path — instrument
sites are encouraged to hold on to the returned metric object anyway),
and each update takes only the metric's own small lock, so concurrent
writers to different series never contend.  Families carry the
Prometheus TYPE/HELP metadata and render through :meth:`
MetricsRegistry.render` as hand-rolled `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
no client library involved.

Histograms use **fixed** bucket bounds chosen at creation (default:
latency-shaped seconds); ``le`` is the Prometheus *inclusive* upper
bound, so ``observe(0.005)`` lands in the ``le="0.005"`` bucket.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Optional

#: Latency-shaped default bounds (seconds), from sub-millisecond kernel
#: flushes up to multi-second sweep cells.
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Size-shaped bounds (counts): kernel batch sizes, tasks per schedule.
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 48.0, 64.0, 128.0,
                256.0, 512.0, 1024.0)


def _fmt(value: float) -> str:
    """Prometheus sample value: integral floats render as integers."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels_text(labels: tuple, extra: tuple = ()) -> str:
    items = tuple(labels) + tuple(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing value (floats allowed: accumulated
    seconds are counters too)."""

    __slots__ = ("_lock", "value")
    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def render_into(self, out: list, name: str, labels: tuple) -> None:
        out.append(f"{name}{_labels_text(labels)} {_fmt(self.value)}")


class Gauge:
    """A value that goes both ways (queue depths, in-flight requests)."""

    __slots__ = ("_lock", "value")
    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def render_into(self, out: list, name: str, labels: tuple) -> None:
        out.append(f"{name}{_labels_text(labels)} {_fmt(self.value)}")


class Histogram:
    """Fixed-bucket histogram; ``le`` bounds are inclusive (Prometheus
    semantics), the last implicit bucket is ``+Inf``."""

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, bounds: tuple = DEFAULT_BUCKETS) -> None:
        self._lock = threading.Lock()
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"histogram bounds must be strictly "
                             f"increasing: {bounds}")
        self.counts = [0] * (len(self.bounds) + 1)   # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        i = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[i] += 1
            self.sum += value
            self.count += 1

    def merge(self, counts, sum_: float, count: int) -> None:
        """Fold pre-aggregated observations in (per-event hot paths —
        the kernel batch recorder — accumulate lock-free in thread-local
        storage and merge once per run).  ``counts`` must align with
        this histogram's buckets, ``+Inf`` included."""
        if len(counts) != len(self.counts):
            raise ValueError(
                f"cannot merge {len(counts)} bucket counts into a "
                f"histogram with {len(self.counts)} buckets")
        with self._lock:
            for i, n in enumerate(counts):
                self.counts[i] += n
            self.sum += sum_
            self.count += count

    def render_into(self, out: list, name: str, labels: tuple) -> None:
        with self._lock:
            counts = list(self.counts)
            total, acc = self.sum, 0
        for bound, n in zip(self.bounds, counts):
            acc += n
            le = (("le", _fmt(bound)),)
            out.append(f"{name}_bucket{_labels_text(labels, le)} {acc}")
        acc += counts[-1]
        out.append(f'{name}_bucket{_labels_text(labels, (("le", "+Inf"),))}'
                   f" {acc}")
        out.append(f"{name}_sum{_labels_text(labels)} {_fmt(total)}")
        out.append(f"{name}_count{_labels_text(labels)} {acc}")


class _Family:
    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: Optional[str],
                 buckets: Optional[tuple]) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: dict = {}


class MetricsRegistry:
    """One process-wide bag of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call fixes the family's kind (and, for histograms, its bucket
    bounds); later calls with the same name and labels return the same
    object, so hot sites can cache it once and update lock-free of the
    registry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict = {}
        self._index: dict = {}

    # ------------------------------------------------------------------
    # get-or-create
    # ------------------------------------------------------------------
    def _metric(self, kind: str, name: str, help_text: Optional[str],
                buckets: Optional[tuple], labels: dict):
        key = (name, tuple(sorted(labels.items())))
        metric = self._index.get(key)       # lock-free fast path
        if metric is not None:
            return metric
        with self._lock:
            metric = self._index.get(key)
            if metric is not None:
                return metric
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}, not {kind}")
            if kind == "histogram":
                metric = Histogram(family.buckets or DEFAULT_BUCKETS)
            elif kind == "gauge":
                metric = Gauge()
            else:
                metric = Counter()
            family.children[key[1]] = metric
            self._index[key] = metric
            return metric

    def counter(self, name: str, _help: Optional[str] = None,
                **labels) -> Counter:
        return self._metric("counter", name, _help, None, labels)

    def gauge(self, name: str, _help: Optional[str] = None,
              **labels) -> Gauge:
        return self._metric("gauge", name, _help, None, labels)

    def histogram(self, name: str, _help: Optional[str] = None,
                  buckets: Optional[tuple] = None, **labels) -> Histogram:
        return self._metric("histogram", name, _help,
                            tuple(buckets) if buckets else None, labels)

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        out: list = []
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            if family.help:
                out.append(f"# HELP {name} {family.help}")
            out.append(f"# TYPE {name} {family.kind}")
            for labels in sorted(family.children):
                family.children[labels].render_into(out, name, labels)
        return "\n".join(out) + ("\n" if out else "")

    def snapshot(self) -> dict:
        """Plain-data view for tests and ``/healthz`` summaries:
        ``{(name, labels): value-or-histogram-dict}``."""
        out: dict = {}
        with self._lock:
            index = dict(self._index)
        for (name, labels), metric in index.items():
            if isinstance(metric, Histogram):
                out[(name, labels)] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": list(metric.counts),
                }
            else:
                out[(name, labels)] = metric.value
        return out
