"""`repro.obs` — unified metrics, tracing and structured logging.

One telemetry subsystem for the whole stack: a process-wide
:class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
fixed-bucket histograms), sha256-deterministic span tracing
(:mod:`repro.obs.tracing`), and JSON logging (:mod:`repro.obs.log`).
The scheduler, the service, and the distributed sweep stack are all
instrumented through the hooks here; surfaces are ``GET /metrics``
(Prometheus text exposition), ``--trace FILE`` on the CLI, and
``memsched obs report``.

Activation mirrors :mod:`repro.faults` exactly — **zero overhead when
disabled** means every instrument site costs one module-global read and
a ``None`` check:

* programmatically — :func:`enable` / the :func:`observing` context
  manager (tests, the CLI's ``--trace``);
* by environment — ``MEMSCHED_OBS=1``, read once per process on first
  use (pool workers inherit it, so worker-side cell timings work).

Instrumentation only ever *reads* scheduler and service state; with
observability on, every schedule, CSV and cached response stays
byte-identical to an uninstrumented run.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Optional

from . import log  # noqa: F401  (re-export: repro.obs.log.info(...))
from .metrics import (  # noqa: F401
    DEFAULT_BUCKETS,
    SIZE_BUCKETS,
    MetricsRegistry,
)
from .tracing import Tracer, det_id, trace_id_for  # noqa: F401

#: Environment variable enabling observability (``1``/``true``/...).
ENV_VAR = "MEMSCHED_OBS"

_FALSEY = {"", "0", "false", "no", "off"}


class ObsState:
    """The live observability state: one registry, at most one tracer.

    ``handles`` is scratch space for hot instrument sites that cache
    resolved metric objects per state (the registry's get-or-create is
    cheap, but not thousands-of-runs-per-sweep cheap)."""

    __slots__ = ("registry", "tracer", "handles")

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.tracer = tracer
        self.handles: dict = {}


# ----------------------------------------------------------------------
# process-wide activation (the repro.faults pattern)
# ----------------------------------------------------------------------
_ACTIVE: Optional[ObsState] = None
_ENV_LOADED = False
_ENV_LOCK = threading.Lock()


def env_enabled() -> bool:
    """Whether :data:`ENV_VAR` asks for observability."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSEY


def enable(*, registry: Optional[MetricsRegistry] = None,
           tracer: Optional[Tracer] = None) -> ObsState:
    """Install process-wide observability (replacing any); returns the
    new state.  An explicit enable wins over the environment."""
    global _ACTIVE, _ENV_LOADED
    with _ENV_LOCK:
        _ENV_LOADED = True
        _ACTIVE = ObsState(registry=registry, tracer=tracer)
        return _ACTIVE


def disable() -> None:
    """Turn observability off (explicitly: the environment is no longer
    consulted this process)."""
    global _ACTIVE, _ENV_LOADED
    with _ENV_LOCK:
        _ENV_LOADED = True
        state, _ACTIVE = _ACTIVE, None
    if state is not None and state.tracer is not None:
        state.tracer.close()


def active() -> Optional[ObsState]:
    """The live state, lazily loading :data:`ENV_VAR` on first call
    (once per process); ``None`` when observability is off — every
    instrument site checks exactly this."""
    global _ACTIVE, _ENV_LOADED
    if not _ENV_LOADED:
        with _ENV_LOCK:
            if not _ENV_LOADED:
                if env_enabled():
                    _ACTIVE = ObsState()
                _ENV_LOADED = True
    return _ACTIVE


@contextmanager
def observing(trace_path=None, *, trace_ident: tuple = ()):
    """Scope observability to a block, restoring the previous state —
    how tests and the CLI's ``--trace FILE`` enable the subsystem.

    With ``trace_path`` a :class:`Tracer` is attached whose trace id
    derives from ``trace_ident`` (deterministic: same invocation, same
    ids).  An already-active registry (``MEMSCHED_OBS=1``) is reused so
    metrics accumulate across the block boundary.
    """
    global _ACTIVE, _ENV_LOADED
    tracer = None
    if trace_path is not None:
        tracer = Tracer(trace_path,
                        trace_id=trace_id_for(*trace_ident)
                        if trace_ident else None)
    with _ENV_LOCK:
        previous, previous_loaded = _ACTIVE, _ENV_LOADED
        registry = previous.registry if previous is not None else None
        state = ObsState(registry=registry, tracer=tracer)
        _ACTIVE, _ENV_LOADED = state, True
    try:
        yield state
    finally:
        if tracer is not None:
            tracer.close()
        with _ENV_LOCK:
            _ACTIVE, _ENV_LOADED = previous, previous_loaded


# ----------------------------------------------------------------------
# ambient span helper
# ----------------------------------------------------------------------
class _NullSpan:
    """The do-nothing span returned when tracing is off; a singleton so
    the disabled path allocates nothing."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """Open a span on the active tracer, or a no-op when tracing is off.
    Attributes must be JSON-serialisable."""
    state = active()
    if state is None or state.tracer is None:
        return NULL_SPAN
    return state.tracer.span(name, attrs or None)


def trace_context() -> Optional[tuple]:
    """``(trace_id, span_id_or_None)`` of the active tracer, or ``None``
    — what HTTP clients serialise into ``X-Trace-Id``/``X-Span-Id``."""
    state = active()
    if state is None or state.tracer is None:
        return None
    return state.tracer.context()
