"""Structured JSON logging to stderr.

One JSON object per line, so chaos-run stderr is greppable and
machine-parseable instead of a mix of prints and silently swallowed
exceptions.  The threshold comes from ``MEMSCHED_LOG_LEVEL``
(``debug``/``info``/``warning``/``error``, default ``info``), read once
per process on first use; :func:`set_level` overrides it (tests).

Logging never touches stdout — the CLI's byte-identity contracts
(``memsched experiment`` output equals the serial run) only cover
stdout, and stderr is where host stats and resume summaries already go.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Optional

ENV_VAR = "MEMSCHED_LOG_LEVEL"

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_threshold: Optional[int] = None

_JSON_TYPES = (str, int, float, bool, type(None), list, tuple, dict)


def set_level(level: Optional[str]) -> Optional[str]:
    """Set the process log level; returns the previous one (``None`` =
    not yet resolved from the environment)."""
    global _threshold
    previous = _threshold
    _threshold = None if level is None else LEVELS[level]
    for name, num in LEVELS.items():
        if num == previous:
            return name
    return None


def _active_threshold() -> int:
    global _threshold
    if _threshold is None:
        raw = os.environ.get(ENV_VAR, "info").strip().lower()
        _threshold = LEVELS.get(raw, LEVELS["info"])
    return _threshold


def log(level: str, event: str, **fields) -> None:
    """Emit one structured log line: ``{"level", "event", "ts", ...}``.
    Non-JSON field values are stringified; a closed stderr (interpreter
    teardown) is ignored."""
    if LEVELS.get(level, LEVELS["info"]) < _active_threshold():
        return
    row: dict = {"level": level, "event": event,
                 "ts": round(time.time(), 3)}
    for key, value in fields.items():
        row[key] = value if isinstance(value, _JSON_TYPES) else str(value)
    try:
        print(json.dumps(row, sort_keys=True, default=str),
              file=sys.stderr, flush=True)
    except (ValueError, OSError):
        pass


def debug(event: str, **fields) -> None:
    log("debug", event, **fields)


def info(event: str, **fields) -> None:
    log("info", event, **fields)


def warning(event: str, **fields) -> None:
    log("warning", event, **fields)


def error(event: str, **fields) -> None:
    log("error", event, **fields)
