#!/usr/bin/env python
"""How far from optimal are the heuristics?  (the paper's Figure 10 question)

For a handful of tiny random DAGs, solve the exact ILP of §4 with the
built-in branch-and-bound and compare against MemHEFT / MemMinMin and the
combinatorial lower bound, across shrinking memory budgets.

Run:  python examples/optimal_vs_heuristics.py
"""

from repro import InfeasibleScheduleError, Platform, memheft, memminmin
from repro.core.bounds import lower_bound
from repro.dags import tiny_rand_set
from repro.experiments import reference_run
from repro.ilp import solve_ilp

platform = Platform(n_blue=1, n_red=1)
print(f"{'graph':<14} {'alpha':>5} {'LB':>6} {'ILP':>8} "
      f"{'MemHEFT':>8} {'MemMinMin':>10}")
print("-" * 56)

for graph in tiny_rand_set(n_graphs=3, size=6):
    ref = reference_run(graph, platform)
    lb = lower_bound(graph, platform)
    for alpha in (1.0, 0.7, 0.5, 0.35):
        bounded = platform.with_uniform_bound(alpha * ref.ref_memory)
        sol = solve_ilp(graph, bounded, node_limit=30000, time_limit=60)
        cells = []
        for algo in (memheft, memminmin):
            try:
                cells.append(f"{algo(graph, bounded).makespan:g}")
            except InfeasibleScheduleError:
                cells.append("--")
        ilp_txt = f"{sol.makespan:g}" if sol.makespan is not None else sol.status
        print(f"{graph.name:<14} {alpha:>5.2f} {lb:>6g} {ilp_txt:>8} "
              f"{cells[0]:>8} {cells[1]:>10}")
    print()

print("ILP <= heuristics always; the gap opens as memory tightens, and the")
print("ILP keeps finding schedules after the heuristics start failing.")
