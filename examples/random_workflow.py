#!/usr/bin/env python
"""Compare all four heuristics on a DAGGEN-style random scientific workflow.

Generates a random layered DAG (the SmallRandSet family of §6.1.1), then
shows what each heuristic pays in makespan as the memory budget shrinks
below what memory-oblivious HEFT would need — the per-DAG view behind the
paper's Figure 11.

Run:  python examples/random_workflow.py [n_tasks] [seed]
"""

import sys

from repro import Platform
from repro.core.bounds import lower_bound
from repro.dags import random_dag
from repro.experiments import absolute_sweep, reference_run, render_absolute_sweep

n_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 30
seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42

graph = random_dag(size=n_tasks, width=0.3, density=0.5, jumps=5, rng=seed)
platform = Platform(n_blue=1, n_red=1)

ref = reference_run(graph, platform)
print(f"random DAG: {graph.n_tasks} tasks, {graph.n_edges} files "
      f"(seed {seed})")
print(f"HEFT reference: makespan {ref.makespan:g}, "
      f"memory peaks blue={ref.peak_blue:g} red={ref.peak_red:g}")
print(f"lower bound: {lower_bound(graph, platform):g}\n")

grid = [round(ref.ref_memory * k / 12, 1) for k in range(1, 13)]
result = absolute_sweep(graph, platform, grid, check=True)
print(render_absolute_sweep(result, title="makespan vs memory bound"))

for algo in ("memheft", "memminmin"):
    m = result.min_feasible_memory(algo)
    if m is not None:
        print(f"{algo}: schedules down to {m:g} memory "
              f"({100 * m / ref.ref_memory:.0f}% of HEFT's requirement)")
