#!/usr/bin/env python
"""Schedule a tiled LU factorisation on a CPU+GPU node (paper §6.2.3).

Builds the LU task graph for a tiled matrix (kernel times from Table 1 of
the paper, memory counted in tiles), then sweeps the memory budget to show
the trade-off the paper's Figure 14 reports:

* MemMinMin produces the fastest schedules when memory is plentiful, but
  fails first when memory shrinks — it greedily fills memory with the many
  non-critical tasks released early by the factorisation;
* MemHEFT follows the critical path and keeps producing schedules with
  roughly *half* the memory.

Run:  python examples/lu_factorization.py [tiles]
"""

import sys

from repro import InfeasibleScheduleError, Platform, memheft, memminmin
from repro.core.bounds import lower_bound
from repro.dags import lu_dag, lu_task_counts
from repro.experiments import reference_run

tiles = int(sys.argv[1]) if len(sys.argv) > 1 else 6
graph = lu_dag(tiles)
counts = lu_task_counts(tiles)
print(f"LU {tiles}x{tiles}: {graph.n_tasks} tasks "
      f"({counts['getrf']} getrf, {counts['trsm_l'] + counts['trsm_u']} trsm, "
      f"{counts['gemm']} gemm, {counts['fictitious']} broadcast stages)")

# The mirage platform of the paper: 12 CPU cores + 3 GPUs.
platform = Platform(n_blue=12, n_red=3)
ref = reference_run(graph, platform)
print(f"memory-oblivious HEFT: makespan {ref.makespan:g} ms, "
      f"needs {ref.ref_memory:g} tiles of memory")
print(f"lower bound: {lower_bound(graph, platform):g} ms")
print(f"(the full matrix is {tiles * tiles} tiles)\n")

print(f"{'tiles':>6} | {'MemHEFT':>10} | {'MemMinMin':>10}")
print("-" * 34)
bound = ref.ref_memory
while bound >= 1:
    row = [f"{bound:6.0f}"]
    for algo in (memheft, memminmin):
        try:
            schedule = algo(graph, platform.with_uniform_bound(bound))
            row.append(f"{schedule.makespan:10.0f}")
        except InfeasibleScheduleError:
            row.append(f"{'--':>10}")
    print(" | ".join(row))
    # min() guards against round() stalling (round(2 * 0.8) == 2).
    bound = min(bound - 1, round(bound * 0.8))
