#!/usr/bin/env python
"""Inspect the Cholesky task graph and its broadcast pipelines (§6.1.2).

The tiled factorisation DAGs do not fit the paper's model directly: one
kernel output (e.g. the factored diagonal tile) feeds many consumers, but
the model attaches one file per edge.  The paper therefore inserts a linear
pipeline of fictitious zero-time tasks that forwards the tile to one
consumer at a time.  This example makes those pipelines visible and shows
that they — not the kernels — dominate the node count as matrices grow.

Run:  python examples/cholesky_pipeline.py [tiles]
"""

import sys

from repro import Platform, memheft
from repro.core.validation import validate_schedule
from repro.dags import cholesky_dag, cholesky_task_counts
from repro.io import ascii_gantt

tiles = int(sys.argv[1]) if len(sys.argv) > 1 else 4

print(f"{'tiles':>6} | {'kernels':>8} | {'pipeline':>8} | {'total':>7}")
print("-" * 40)
for t in range(2, tiles + 1):
    c = cholesky_task_counts(t)
    kernels = c["potrf"] + c["trsm"] + c["syrk"] + c["gemm"]
    print(f"{t:>6} | {kernels:>8} | {c['fictitious']:>8} | {c['total']:>7}")

graph = cholesky_dag(tiles)
counts = cholesky_task_counts(tiles)
assert graph.n_tasks == counts["total"]

# The broadcast pipeline keeps every node's fan-out at most 2 + next stage.
widest = max(graph.out_degree(t) for t in graph.tasks())
print(f"\nmax fan-out in the DAG: {widest} "
      "(pipelines cap it; a naive broadcast would scale with the tile count)")

platform = Platform(n_blue=12, n_red=3)
schedule = memheft(graph, platform)
peaks = validate_schedule(graph, platform, schedule)
print(f"\nMemHEFT on 12 CPUs + 3 GPUs: makespan {schedule.makespan:g} ms, "
      f"peaks blue={peaks[list(peaks)[0]]:g} red={peaks[list(peaks)[1]]:g} tiles")
if tiles <= 4:
    print(ascii_gantt(schedule))
