#!/usr/bin/env python
"""Quickstart: schedule the paper's toy DAG on a 1 CPU + 1 GPU platform.

Reproduces the worked example of §3 (Figures 2-4): with both memories
capped at 5 units the best schedule finishes at t=6; squeezing the caps to
4 forces a slower 7-unit schedule — the memory/makespan trade-off that
motivates the whole paper.

Run:  python examples/quickstart.py
"""

from repro import (
    InfeasibleScheduleError,
    Platform,
    memheft,
    memminmin,
    validate_schedule,
)
from repro.dags import dex
from repro.ilp import solve_ilp
from repro.io import ascii_gantt, schedule_summary, to_dot

graph = dex()
print(f"Task graph: {graph.name} — {graph.n_tasks} tasks, {graph.n_edges} files")
print(to_dot(graph))
print()

for bound in (5, 4, 3):
    platform = Platform(n_blue=1, n_red=1, mem_blue=bound, mem_red=bound)
    print(f"--- memory bound M = {bound} on both memories ---")
    for name, algo in (("MemHEFT", memheft), ("MemMinMin", memminmin)):
        try:
            schedule = algo(graph, platform)
        except InfeasibleScheduleError:
            print(f"{name:10s}: cannot schedule within the bounds")
            continue
        peaks = validate_schedule(graph, platform, schedule)
        peak_txt = ", ".join(f"{m.value}={v:g}" for m, v in peaks.items())
        print(f"{name:10s}: makespan {schedule.makespan:g} (peaks {peak_txt})")

    # Small enough for the exact ILP: what is the true optimum?
    sol = solve_ilp(graph, platform, time_limit=60)
    print(f"{'ILP':10s}: status={sol.status}, optimal makespan={sol.makespan}")
    if sol.schedule is not None:
        print(ascii_gantt(sol.schedule))
        print(schedule_summary(sol.schedule))
    print()
