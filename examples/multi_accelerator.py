#!/usr/bin/env python
"""Beyond the paper: scheduling on a node with CPU + two accelerator types.

The paper's conclusion (§7) proposes extending the heuristics to platforms
with several accelerator types and more than two memories.  The
``repro.multi`` subpackage implements exactly that; this example schedules
a random workflow on a three-memory node (CPUs, a big-memory accelerator,
a fast small-memory accelerator) and shows how the memory-aware placement
shifts work between accelerators as their capacities shrink.

Run:  python examples/multi_accelerator.py
"""

import numpy as np

from repro.multi import (
    MultiInfeasibleError,
    MultiPlatform,
    MultiTaskGraph,
    multi_memheft,
    validate_multi_schedule,
)

rng = np.random.default_rng(7)
CLASSES = ("cpu", "accel-A", "accel-B")

# A layered random workflow: accel-B is ~8x faster than CPU, accel-A ~3x.
g = MultiTaskGraph(3, name="workflow")
n = 40
for k in range(n):
    base = float(rng.integers(8, 32))
    g.add_task(k, (base, base / 3, base / 8))
for i in range(n):
    for j in range(i + 1, min(i + 6, n)):
        if rng.random() < 0.3:
            g.add_dependency(i, j, size=float(rng.integers(1, 6)),
                             comm=float(rng.integers(1, 4)))

# 8 CPU cores, 2 of accelerator A, 1 of accelerator B.
platform = MultiPlatform([8, 2, 1])
base = multi_memheft(g, platform)
peaks = validate_multi_schedule(g, platform, base)
print(f"{g.n_tasks}-task workflow on (8 CPU, 2 accel-A, 1 accel-B)")
print(f"unbounded: makespan {base.makespan:g}, peaks "
      + ", ".join(f"{c}={p:g}" for c, p in zip(CLASSES, peaks)))

print(f"\n{'accel caps':>12} | {'makespan':>9} | tasks per class")
print("-" * 55)
cap = max(peaks[1], peaks[2], 1.0)
while cap >= 1:
    bounded = MultiPlatform([8, 2, 1], [float("inf"), cap, cap])
    try:
        s = multi_memheft(g, bounded)
        validate_multi_schedule(g, bounded, s)
        counts = [0, 0, 0]
        for p in s.placements():
            counts[p.cls] += 1
        dist = ", ".join(f"{c}:{k}" for c, k in zip(CLASSES, counts))
        print(f"{cap:12.1f} | {s.makespan:9.1f} | {dist}")
    except MultiInfeasibleError:
        print(f"{cap:12.1f} | {'--':>9} | infeasible")
    cap = round(cap * 0.6, 1)

print("\nAs accelerator memories shrink, work migrates back to the CPUs")
print("(slower but roomy) before the platform becomes infeasible.")
