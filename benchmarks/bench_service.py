"""Load-generator benchmark for the scheduling service (`memsched serve`).

Spins up live in-process servers (:class:`repro.service.ThreadedServer`)
and drives them with real HTTP clients, emitting a machine-readable
``BENCH_service.json`` (schema in ``benchmarks/README.md``) so the service
perf trajectory is tracked alongside ``BENCH_scaling.json``:

* **latency** — one ``/schedule`` instance at ``--latency-tasks`` (default
  1000, the paper's LargeRandSet scale): the cold path (parse → schedule →
  validate → serialize) against the warm content-addressed cache hit.
  The PR 3 acceptance target is warm ≥ 10× faster than cold at n = 1000;
  the cold and warm bodies are asserted byte-identical.
* **throughput** — ``--requests`` requests over ``--clients`` concurrent
  keep-alive clients cycling through a small graph pool (first pass cold,
  the rest cache hits), reporting req/s and p50/p99 latency.
* **batch** — one ``/batch`` of HugeRandSet instances against a fresh
  ``workers=1`` server and a fresh ``--workers N`` server; results are
  asserted byte-identical (serial ≡ parallel by construction), wall-clock
  compared.  On a single-core container the parallel path can only lose —
  ``cpu_count`` is recorded next to the numbers.

Run::

    PYTHONPATH=src python benchmarks/bench_service.py --json BENCH_service.json
    PYTHONPATH=src python benchmarks/bench_service.py \
        --latency-tasks 300 --requests 40 --clients 4 --workers 2   # smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_mod
import sys
import threading
import time

from repro.core.platform import Platform
from repro.dags.daggen import random_dag
from repro.dags.datasets import huge_rand_set
from repro.io.json_io import graph_to_dict, platform_to_dict
from repro.service import ServiceApp, ServiceClient, ThreadedServer
from repro.service.client import build_request

#: Two processors per class with *finite* capacities, so the cold path
#: exercises the real memory machinery (bounded ``earliest_fit`` queries,
#: staircase bookkeeping).  12000 sits ~1.5x above the largest peak any
#: bench family reaches (n=1000 daggen peaks ~7600), so every instance
#: stays feasible while the bound is finite.
BENCH_PLATFORM = Platform(n_blue=2, n_red=2, mem_blue=12000, mem_red=12000)


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


def _graph_dict(size: int, seed: int) -> dict:
    g = random_dag(size=size, rng=seed,
                   w_range=(1, 100), c_range=(1, 100), f_range=(1, 100))
    g.name = f"bench_service[{size}/{seed}]"
    return graph_to_dict(g)


# ----------------------------------------------------------------------
# sections
# ----------------------------------------------------------------------
def bench_latency(args: argparse.Namespace) -> dict:
    graph_d = _graph_dict(args.latency_tasks, seed=42)
    platform_d = platform_to_dict(BENCH_PLATFORM)
    with ThreadedServer(ServiceApp(workers=1)) as srv:
        client = ServiceClient(srv.host, srv.port)
        client.wait_until_ready()
        t0 = time.perf_counter()
        cold = client.schedule(graph_d, platform_d, args.algorithm)
        cold_s = time.perf_counter() - t0
        assert cold.cached is False
        warm_times = []
        identical = True
        for _ in range(args.latency_warm):
            t0 = time.perf_counter()
            warm = client.schedule(graph_d, platform_d, args.algorithm)
            warm_times.append(time.perf_counter() - t0)
            assert warm.cached is True
            identical &= (warm.raw == cold.raw)
        client.close()
    warm_p50 = _percentile(warm_times, 0.50)
    result = {
        "n_tasks": args.latency_tasks,
        "algorithm": args.algorithm,
        "cold_s": round(cold_s, 6),
        "warm_p50_s": round(warm_p50, 6),
        "warm_p99_s": round(_percentile(warm_times, 0.99), 6),
        "speedup_cold_over_warm": round(cold_s / warm_p50, 2),
        "meets_10x": cold_s / warm_p50 >= 10.0,
        "identical_bytes": identical,
    }
    print(f"[latency]    n={result['n_tasks']} cold={cold_s:.4f}s "
          f"warm_p50={warm_p50:.4f}s "
          f"speedup={result['speedup_cold_over_warm']:g}x "
          f"identical={identical}")
    return result


def bench_throughput(args: argparse.Namespace) -> tuple[dict, dict]:
    graphs = [_graph_dict(args.throughput_tasks, seed=100 + k)
              for k in range(args.throughput_graphs)]
    platform_d = platform_to_dict(BENCH_PLATFORM)
    latencies: list[float] = []
    lock = threading.Lock()
    with ThreadedServer(ServiceApp(workers=1)) as srv:
        probe = ServiceClient(srv.host, srv.port)
        probe.wait_until_ready()

        def worker(offset: int) -> None:
            client = ServiceClient(srv.host, srv.port)
            local: list[float] = []
            for r in range(offset, args.requests, args.clients):
                t0 = time.perf_counter()
                client.schedule(graphs[r % len(graphs)], platform_d,
                                args.algorithm)
                local.append(time.perf_counter() - t0)
            client.close()
            with lock:
                latencies.extend(local)

        t0 = time.perf_counter()
        threads = [threading.Thread(target=worker, args=(c,))
                   for c in range(args.clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        health = probe.healthz()
        probe.close()
    cache = health["cache"]
    hit_rate = cache["hits"] / max(1, cache["hits"] + cache["misses"])
    result = {
        "clients": args.clients,
        "n_graphs": args.throughput_graphs,
        "graph_size": args.throughput_tasks,
        "n_requests": len(latencies),
        "wall_s": round(wall, 4),
        "rps": round(len(latencies) / wall, 2),
        "p50_s": round(_percentile(latencies, 0.50), 6),
        "p99_s": round(_percentile(latencies, 0.99), 6),
        "cache_hit_rate": round(hit_rate, 4),
    }
    print(f"[throughput] {result['n_requests']} reqs / {args.clients} clients "
          f"in {wall:.3f}s = {result['rps']:g} req/s "
          f"(p50={result['p50_s']*1e3:.1f}ms p99={result['p99_s']*1e3:.1f}ms "
          f"hit_rate={hit_rate:.0%})")
    return result, cache


def bench_batch(args: argparse.Namespace) -> dict:
    graphs = huge_rand_set(n_graphs=args.batch_size, size=args.batch_tasks)
    platform_d = platform_to_dict(BENCH_PLATFORM)
    requests = [build_request(graph_to_dict(g), platform_d, args.algorithm)
                for g in graphs]

    def run(workers: int) -> tuple[float, list[bytes]]:
        # A fresh server per run: the comparison needs a cold cache.
        with ThreadedServer(ServiceApp(workers=workers)) as srv:
            client = ServiceClient(srv.host, srv.port, timeout=600.0)
            client.wait_until_ready()
            if workers > 1:
                # Warm the persistent pool (worker spawn + package import
                # is paid once per service *lifetime*, not per batch — an
                # always-on service never pays it on the request path, so
                # the steady-state comparison must not either).  The
                # warm-up graphs are distinct from the measured ones, so
                # the cache stays cold for the real batch.
                warmup = [build_request(_graph_dict(10, seed=9000 + k),
                                        platform_d, args.algorithm)
                          for k in range(workers)]
                client.batch(warmup)
            t0 = time.perf_counter()
            results = client.batch(requests)
            elapsed = time.perf_counter() - t0
            client.close()
        bodies = [json.dumps(r.schedule, sort_keys=True).encode()
                  for r in results]
        return elapsed, bodies

    serial_s, serial_bodies = run(1)
    workers_s, workers_bodies = run(args.workers)
    identical = serial_bodies == workers_bodies
    result = {
        "size": args.batch_size,
        "graph_size": args.batch_tasks,
        "workers": args.workers,
        "serial_s": round(serial_s, 4),
        "workers_s": round(workers_s, 4),
        "speedup": round(serial_s / workers_s, 2),
        "identical_results": identical,
    }
    print(f"[batch]      {args.batch_size}x{args.batch_tasks}-task instances: "
          f"serial={serial_s:.3f}s workers({args.workers})={workers_s:.3f}s "
          f"speedup={result['speedup']:g}x identical={identical}")
    return result


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--algorithm", default="memheft")
    parser.add_argument("--latency-tasks", type=int, default=1000,
                        help="graph size for the cold/warm latency section "
                             "(acceptance target lives at 1000)")
    parser.add_argument("--latency-warm", type=int, default=7,
                        help="warm repetitions (p50 reported)")
    parser.add_argument("--requests", type=int, default=60,
                        help="total requests in the throughput section")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent keep-alive clients")
    parser.add_argument("--throughput-graphs", type=int, default=12)
    parser.add_argument("--throughput-tasks", type=int, default=120)
    parser.add_argument("--batch-size", type=int, default=4,
                        help="HugeRandSet instances per /batch")
    parser.add_argument("--batch-tasks", type=int, default=250,
                        help="tasks per batch instance")
    parser.add_argument("-w", "--workers", type=int, default=2,
                        help="process-pool size for the parallel batch run")
    parser.add_argument("--json", metavar="PATH",
                        help="write BENCH_service.json here")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    latency = bench_latency(args)
    throughput, cache = bench_throughput(args)
    batch = bench_batch(args)
    report = {
        "bench": "service",
        "schema_version": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform_mod.python_version(),
        "machine": platform_mod.platform(),
        "cpu_count": os.cpu_count(),
        "latency": latency,
        "throughput": throughput,
        "throughput_cache": cache,
        "batch": batch,
    }
    if args.json:
        from repro._util import atomic_write_json
        atomic_write_json(args.json, report)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
