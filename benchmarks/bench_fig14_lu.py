"""Figure 14 — tiled LU factorisation: makespan vs memory (in tiles).

Expected shape (paper §6.2.3): MemMinMin gives the better makespans when
memory is plentiful, but fails well before MemHEFT as memory shrinks —
the factorisation releases many non-critical tasks early, MemMinMin
schedules them eagerly and fills memory, while MemHEFT follows the
critical path and keeps working down to roughly the memory needed to hold
the matrix split across the two memories.
"""

import pytest

from repro.dags.linalg import lu_dag
from repro.experiments.figures import MIRAGE_PLATFORM, fig14
from repro.scheduling.memheft import memheft


@pytest.mark.figure
def test_fig14_regenerates(show, scale, benchmark):
    result = benchmark.pedantic(fig14, args=(scale,), rounds=1, iterations=1)
    show(result)
    data = result.data
    mh = data.min_feasible_memory("memheft")
    mm = data.min_feasible_memory("memminmin")
    assert mh is not None, "MemHEFT must schedule LU somewhere on the grid"
    if mm is not None:
        # The headline claim: MemHEFT survives at most as much memory.
        assert mh <= mm
    # Everything respects the lower bound and anchors at HEFT for alpha=1.
    for algo in ("memheft", "memminmin"):
        for p in data.series(algo):
            if p.makespan is not None:
                assert p.makespan >= data.lower_bound - 1e-6
    assert data.series("memheft")[-1].makespan == pytest.approx(
        data.heft_makespan, rel=1e-6)


def test_bench_memheft_lu(benchmark, scale):
    graph = lu_dag(scale.lu_tiles)
    schedule = benchmark(memheft, graph, MIRAGE_PLATFORM)
    assert len(schedule) == graph.n_tasks
