"""EST kernel backends: vectorized numpy batch vs scalar vs seed kernel.

Script-mode benchmark for the pluggable EST kernel
(:mod:`repro.scheduling.kernel`) and the DAG-scoped candidate
invalidation, emitted into a machine-readable ``BENCH_kernel.json``
(schema in ``benchmarks/README.md``, gated in CI by
``scripts/check_speedup.py --kernel``)::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--json PATH] \
        [--n N] [--rounds R]

Four sections, all on the frontier workload that motivates batching — a
two-layer graph whose scheduled producer half feeds an ``n/2``-wide ready
frontier, the candidate storm a selector faces after a profile-touching
commit.  Every vectorized section is run once per available vectorized
backend (``numpy`` always; ``compiled`` when a C toolchain is present),
one row per ``backend``:

* **vs_seed** — each batch kernel against the *seed* incremental
  kernel (frozen-dataclass breakdowns, ``(task, class)`` tuple-key fit
  memo, per-evaluation ``min()`` over class processors — reproduced here
  by :class:`SeedKernel` the way ``bench_scaling.py`` reproduces
  ``LegacySuffixMaxProfile``).  This is the headline number: the
  compiled backend is >= 8x at n=2000 single-thread (gated >= 8x in CI);
  numpy is gated >= 3x; and CI additionally gates compiled >= 1.5x over
  numpy on at least one config (``kernel_ms`` ratio at equal seed
  baseline).
* **batch** — each vectorized backend vs the *current* optimized scalar
  kernel on the same ``evaluate_class_batch`` entry point (the
  production batch path used by the selectors' deferred full-evaluation
  flush).
* **end_to_end** — the three memory-aware heuristics run whole on the
  frontier graph, scalar vs each vectorized backend.
* **invalidation** — DAG-scoped candidate invalidation vs the coarse
  per-class dirty rule: full kernel re-evaluations counted by
  ``SelectorStats`` on wide DAGs (>= 2x fewer on unbounded profiles);
  the bounded row is reported too, where every commit really does touch
  the profile and the ratio is honestly ~1.0.

Every compared pair is asserted bit-identical (breakdown-for-breakdown
or placement-for-placement) before a single timing is recorded.
Timings are interleaved best-of-``--rounds`` minima, so machine noise
hits both sides alike.
"""

import argparse
import math
import os
import platform as platform_mod
import random
import sys
import time
from dataclasses import dataclass

from repro.core.graph import TaskGraph
from repro.core.platform import Platform
from repro.dags.daggen import random_dag
from repro.scheduling.candidates import MinEFTSelector, SufferageSelector
from repro.scheduling.heft import heft
from repro.scheduling.kernel import (
    CompiledKernel,
    NumpyKernel,
    ScalarKernel,
    available_backends,
)
from repro.scheduling.memheft import memheft
from repro.scheduling.memminmin import memminmin
from repro.scheduling.state import SchedulerState
from repro.scheduling.sufferage import memsufferage

HEURISTICS = (memheft, memminmin, memsufferage)

#: Heterogeneous per-processor speeds (seeded, reproducible).
def _speeds(n_procs: int, seed: int = 7) -> list:
    rnd = random.Random(seed)
    return [round(rnd.uniform(0.5, 4.0), 2) for _ in range(n_procs)]


# ----------------------------------------------------------------------
# the frontier workload
# ----------------------------------------------------------------------
def two_layer(n: int, rng: int = 0) -> TaskGraph:
    """``n/2`` producers feeding an ``n/2``-wide consumer frontier."""
    rnd = random.Random(rng)
    g = TaskGraph(f"frontier{n}")
    half = n // 2
    for t in range(n):
        g.add_task(t, w_blue=rnd.uniform(1, 100), w_red=rnd.uniform(1, 100))
    for child in range(half, n):
        for parent in rnd.sample(range(half), k=rnd.randint(1, 3)):
            g.add_dependency(parent, child, size=rnd.uniform(1, 50),
                             comm=rnd.uniform(1, 50))
    return g


#: (label, (n_blue, n_red), heterogeneous?, bounded?)
CONFIGS = (
    ("uniform-2+2-bounded", (2, 2), False, True),
    ("hetero-6+6-bounded", (6, 6), True, True),
    ("uniform-2+2-unbounded", (2, 2), False, False),
)


def _make_platform(procs, hetero, bounded, graph):
    nb, nr = procs
    speeds = _speeds(nb + nr) if hetero else None
    if not bounded:
        return Platform(nb, nr, speeds=speeds)
    base = heft(graph, Platform(nb, nr))
    cap = 1.1 * max(base.meta["peak_blue"], base.meta["peak_red"])
    return Platform(nb, nr, cap, cap, speeds=speeds)


def _frontier_state(graph, platform):
    """Schedule the producer half; return (state, ready frontier)."""
    state = SchedulerState(graph, platform)
    topo = {t: i for i, t in enumerate(graph.topological_order())}
    ready = sorted(state.ready_roots(), key=topo.__getitem__)
    half = graph.n_tasks // 2
    while any(t < half for t in ready):
        bd = None
        for t in ready:
            if t >= half:
                continue
            bd = state.best_est(t)
            if bd is not None:
                break
        if bd is None:
            break
        state.commit(bd)
        ready = sorted([t for t in ready if t != bd.task]
                       + state.pop_newly_ready(), key=topo.__getitem__)
    return state, ready


def _clear_memos(state):
    """Reset the EST memos so every round re-pays the full candidate
    storm (frontier unchanged, caches cold — the post-commit worst case).

    Clears the version-keyed caches every backend would lose after a
    profile-touching commit: the ``(task, class)`` fit memos, the numpy
    (``("sfx", idx)``) and compiled (``("csfx", idx)``) staircase
    suffix-max views, and the compiled availability mirror
    (``"cavail"``, keyed on ``avail.version``).  Static structure that
    survives commits in production — CSR arrays (``"cstatic"``), the
    finish/memidx mirrors (``"cdyn"``), ``"times"`` — stays, the same
    way the scalar side keeps the shared ``_precedence_parts`` memo."""
    for slot in state._fit:
        slot[0] = -1
        slot[1].clear()
    for key in list(state._kernel_scratch):
        if isinstance(key, tuple) and key[0] in ("sfx", "csfx"):
            del state._kernel_scratch[key]
    state._kernel_scratch.pop("cavail", None)


def _vec_kernels():
    """``(name, kernel)`` for every available vectorized backend."""
    kernels = [("numpy", NumpyKernel())]
    if "compiled" in available_backends():
        kernels.append(("compiled", CompiledKernel()))
    return kernels


# ----------------------------------------------------------------------
# the seed kernel, reproduced
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SeedBreakdown:
    """The seed's frozen-dataclass EST breakdown (construction cost and
    all), field-compatible with :class:`repro.scheduling.kernel.ESTBreakdown`."""

    task: object
    memory: object
    resource: float
    precedence: float
    task_mem: float
    comm_mem: float
    cmax: float
    est: float
    eft: float
    comm_fit: float = 0.0
    duration: float = math.inf
    proc: int = -1


class SeedKernel:
    """The seed repo's incremental EST kernel, verbatim: per-(task, class)
    evaluation with a ``(task, idx)`` tuple-key fit memo, a per-evaluation
    ``min()`` generator over the class processors, the Python
    finish-choice loop for heterogeneous classes, and frozen-dataclass
    breakdown construction.  Shares the state's ``_precedence_parts``
    memo (which the seed had too) so the comparison isolates the kernel."""

    def __init__(self, state):
        self._fit = {}
        self._uniform = [len(set(state.platform.class_speeds(m))) <= 1
                         for m in state.memories]

    def evaluate(self, state, task, memory):
        platform = state.platform
        if not state.is_ready(task) or platform.n_procs_of(memory) == 0:
            inf = math.inf
            return SeedBreakdown(task, memory, inf, inf, inf, inf, 0.0,
                                 inf, inf)
        idx = memory.index
        precedence, cmax, cross_in, need_task = \
            state._precedence_parts(task)[idx]
        profile = state.mem[memory]
        key = (task, idx)
        cached = self._fit.get(key)
        if cached is not None and cached[0] == profile.version:
            task_mem, comm_fit = cached[1], cached[2]
        else:
            task_mem = profile.earliest_fit(need_task)
            comm_fit = (profile.earliest_fit(cross_in)
                        if cross_in > 0.0 or cmax > 0.0 else 0.0)
            self._fit[key] = (profile.version, task_mem, comm_fit)
        comm_mem = comm_fit + cmax if cross_in > 0.0 or cmax > 0.0 else 0.0
        w = state.graph.w(task, memory)
        avail = state.avail
        if self._uniform[idx]:
            resource = min(avail[p] for p in platform.procs(memory))
            est = max(resource, precedence, task_mem, comm_mem)
            duration = w / platform.max_class_speeds[idx]
            proc = -1
        else:
            floor = max(precedence, task_mem, comm_mem)
            speeds = platform.speeds
            proc = -1
            best_finish = math.inf
            resource = -math.inf
            duration = math.inf
            for p in platform.procs(memory):
                a = avail[p]
                dur = w / speeds[p]
                finish = (a if a > floor else floor) + dur
                if finish < best_finish or (finish == best_finish
                                            and a > resource):
                    proc, best_finish, resource, duration = p, finish, a, dur
            est = max(floor, resource)
        eft = est + duration if math.isfinite(est) else math.inf
        return SeedBreakdown(task, memory, resource, precedence, task_mem,
                             comm_mem, cmax, est, eft, comm_fit,
                             duration, proc)


_FIELDS = ("task", "resource", "precedence", "task_mem", "comm_mem", "cmax",
           "est", "eft", "comm_fit", "duration", "proc")


def _snap_bd(bd):
    return tuple(getattr(bd, f) for f in _FIELDS)


# ----------------------------------------------------------------------
# sections
# ----------------------------------------------------------------------
def _duel(run_a, run_b, rounds):
    """Interleaved best-of-``rounds``: (best_a, best_b) wall seconds."""
    best_a = best_b = math.inf
    for _ in range(rounds):
        best_a = min(best_a, run_a())
        best_b = min(best_b, run_b())
    return best_a, best_b


def bench_vs_seed(n, rounds):
    rows = []
    for label, procs, hetero, bounded in CONFIGS:
        graph = two_layer(n)
        platform = _make_platform(procs, hetero, bounded, graph)
        state, ready = _frontier_state(graph, platform)
        seed = SeedKernel(state)
        vecs = _vec_kernels()
        memories = state.memories

        def run_seed():
            seed._fit.clear()
            _clear_memos(state)
            t0 = time.perf_counter()
            out = [[seed.evaluate(state, t, m) for t in ready]
                   for m in memories]
            dt = time.perf_counter() - t0
            run_seed.out = out
            return dt

        def run_vec(kernel):
            _clear_memos(state)
            t0 = time.perf_counter()
            out = [kernel.evaluate_class_batch(state, ready, m)
                   for m in memories]
            dt = time.perf_counter() - t0
            run_vec.out = out
            return dt

        run_seed()
        ref = [[_snap_bd(b) for b in cls] for cls in run_seed.out]
        for _, kernel in vecs:
            run_vec(kernel)
            assert ref == [[_snap_bd(b) for b in cls]
                           for cls in run_vec.out], kernel.name
        # Interleave all backends against the same seed baseline so
        # machine noise hits every side alike and the per-config
        # compiled/numpy ratio is honest.
        best_seed = math.inf
        best = {name: math.inf for name, _ in vecs}
        for _ in range(rounds):
            best_seed = min(best_seed, run_seed())
            for name, kernel in vecs:
                best[name] = min(best[name], run_vec(kernel))
        for name, _ in vecs:
            rows.append({"config": label, "n": n, "batch_size": len(ready),
                         "backend": name,
                         "seed_ms": round(best_seed * 1e3, 3),
                         "kernel_ms": round(best[name] * 1e3, 3),
                         "speedup": round(best_seed / best[name], 2),
                         "identical": True})
            print(f"  vs_seed {label} [{name}]: seed={best_seed*1e3:.2f}ms "
                  f"{name}={best[name]*1e3:.2f}ms "
                  f"speedup={best_seed/best[name]:.2f}x (B={len(ready)})")
    return rows


def bench_batch(n, rounds):
    rows = []
    for label, procs, hetero, bounded in CONFIGS:
        graph = two_layer(n)
        platform = _make_platform(procs, hetero, bounded, graph)
        state, ready = _frontier_state(graph, platform)
        scalar = ScalarKernel()
        vecs = _vec_kernels()
        memories = state.memories

        def run(kernel):
            _clear_memos(state)
            t0 = time.perf_counter()
            out = [kernel.evaluate_class_batch(state, ready, m)
                   for m in memories]
            return time.perf_counter() - t0, out

        _, out_s = run(scalar)
        for name, kernel in vecs:
            _, out_v = run(kernel)
            assert out_s == out_v, name
        for name, kernel in vecs:
            ds, dn = _duel(lambda: run(scalar)[0],
                           lambda: run(kernel)[0], rounds)
            rows.append({"config": label, "n": n, "batch_size": len(ready),
                         "backend": name,
                         "scalar_ms": round(ds * 1e3, 3),
                         "kernel_ms": round(dn * 1e3, 3),
                         "speedup": round(ds / dn, 2), "identical": True})
            print(f"  batch {label} [{name}]: scalar={ds*1e3:.2f}ms "
                  f"{name}={dn*1e3:.2f}ms speedup={ds/dn:.2f}x "
                  f"(B={len(ready)})")
    return rows


def bench_end_to_end(n):
    rows = []
    graph = two_layer(n)
    platform = _make_platform((2, 2), False, True, graph)

    def snap(schedule):
        return [(t, p.proc, p.memory.index, p.start, p.finish)
                for t in graph.tasks()
                for p in (schedule.placement(t),)]

    backends = [name for name, _ in _vec_kernels()]
    for fn in HEURISTICS:
        for backend in backends:
            ds = dn = math.inf
            a = b = None
            for _ in range(3):
                t0 = time.perf_counter()
                a = fn(graph, platform, backend="scalar")
                ds = min(ds, time.perf_counter() - t0)
                t0 = time.perf_counter()
                b = fn(graph, platform, backend=backend)
                dn = min(dn, time.perf_counter() - t0)
            assert snap(a) == snap(b)
            rows.append({"heuristic": fn.__name__, "n": n,
                         "backend": backend,
                         "scalar_ms": round(ds * 1e3, 1),
                         "kernel_ms": round(dn * 1e3, 1),
                         "speedup": round(ds / dn, 2), "identical": True})
            print(f"  end_to_end {fn.__name__} [{backend}]: "
                  f"scalar={ds*1e3:.1f}ms {backend}={dn*1e3:.1f}ms "
                  f"speedup={ds/dn:.2f}x")
    return rows


def _drive_counting(graph, platform, selector_cls, dag_scoped):
    state = SchedulerState(graph, platform, backend="scalar")
    order = {t: i for i, t in enumerate(graph.topological_order())}
    selector = selector_cls(state, order, dag_scoped=dag_scoped)
    for task in graph.roots():
        selector.push(task)
    while len(selector):
        best = selector.select()
        if best is None:
            break
        state.commit(best)
        selector.remove(best.task)
        for task in state.pop_newly_ready():
            selector.push(task)
    snap = {t: (p.proc, p.memory.index, p.start, p.finish)
            for t in graph.tasks() if state.is_scheduled(t)
            for p in (state.schedule.placement(t),)}
    return snap, selector.stats


def bench_invalidation(n):
    rows = []
    graph = random_dag(size=n, width=0.8, rng=1)
    for bound_label, platform in (
            ("unbounded", Platform(2, 2)),
            ("bounded-1.1x", None)):
        if platform is None:
            base = heft(graph, Platform(2, 2))
            cap = 1.1 * max(base.meta["peak_blue"], base.meta["peak_red"])
            platform = Platform(2, 2, cap, cap)
        for selector_cls in (MinEFTSelector, SufferageSelector):
            scoped_snap, scoped = _drive_counting(graph, platform,
                                                  selector_cls, True)
            coarse_snap, coarse = _drive_counting(graph, platform,
                                                  selector_cls, False)
            assert scoped_snap == coarse_snap
            ratio = (coarse.n_full_evals / scoped.n_full_evals
                     if scoped.n_full_evals else math.inf)
            rows.append({"selector": selector_cls.__name__,
                         "bound": bound_label, "n": n, "width": 0.8,
                         "scoped_full_evals": scoped.n_full_evals,
                         "coarse_full_evals": coarse.n_full_evals,
                         "scoped_refreshes": scoped.n_refreshes,
                         "eval_ratio": round(ratio, 2), "identical": True})
            print(f"  invalidation {selector_cls.__name__} {bound_label}: "
                  f"scoped={scoped.n_full_evals} coarse={coarse.n_full_evals}"
                  f" ratio={ratio:.2f}x")
    return rows


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="EST kernel backend benchmarks; emits BENCH_kernel.json")
    parser.add_argument("--n", type=int, default=2000,
                        help="graph size for the frontier workload "
                             "(default 2000, the acceptance point)")
    parser.add_argument("--rounds", type=int, default=12,
                        help="interleaved timing rounds (minima reported)")
    parser.add_argument("--inval-n", type=int, default=400,
                        help="graph size for the invalidation section")
    parser.add_argument("--json", default="BENCH_kernel.json",
                        help="output path ('' disables)")
    args = parser.parse_args(argv)

    if "numpy" not in available_backends():
        print("numpy not installed; kernel benchmark needs both backends",
              file=sys.stderr)
        return 1

    report = {
        "bench": "kernel",
        "schema_version": 2,
        "backends": list(available_backends()),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "machine": platform_mod.platform(),
        "cpu_count": os.cpu_count(),
        "n": args.n,
    }
    print("batch kernels vs seed incremental kernel "
          "(bit-identical breakdowns asserted)")
    report["vs_seed"] = bench_vs_seed(args.n, args.rounds)
    print("batch kernels vs current scalar kernel")
    report["batch"] = bench_batch(args.n, args.rounds)
    print("end-to-end heuristics, scalar vs vectorized backends "
          "(bit-identical schedules asserted)")
    report["end_to_end"] = bench_end_to_end(args.n)
    print("DAG-scoped invalidation vs coarse per-class rule "
          "(identical schedules asserted)")
    report["invalidation"] = bench_invalidation(args.inval_n)

    if args.json:
        from repro._util import atomic_write_json
        atomic_write_json(args.json, report)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
