"""Ablation — random rank tie-breaking (§5.1: "tie-breaking is done
randomly").  Measures the makespan spread MemHEFT exhibits over tie-break
seeds, to separate algorithmic signal from tie-break noise."""

import pytest

from repro.dags.datasets import small_rand_set
from repro.experiments.ablation import tiebreak_ablation
from repro.experiments.figures import RAND_PLATFORM
from repro.experiments.report import render_table
from repro.scheduling.ranks import rank_order


@pytest.mark.figure
def test_tiebreak_ablation(show, scale, benchmark):
    graphs = small_rand_set(min(scale.small_n_graphs, 8), scale.small_size)
    rows = benchmark.pedantic(tiebreak_ablation, args=(graphs, RAND_PLATFORM),
                              kwargs={"n_seeds": 5}, rounds=1, iterations=1)
    table = render_table(
        ["graph", "deterministic", "seeded mean", "min", "max"],
        [[r.graph_name, r.deterministic, round(r.seeded_mean, 1),
          r.seeded_min, r.seeded_max] for r in rows],
        title="MemHEFT rank tie-break spread")
    print("\n" + table)
    for r in rows:
        assert r.seeded_min <= r.deterministic * 1.5  # noise, not regime change


def test_bench_rank_computation(benchmark, scale):
    graph = small_rand_set(1, scale.small_size)[0]
    order = benchmark(rank_order, graph)
    assert len(order) == graph.n_tasks
