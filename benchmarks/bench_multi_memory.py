"""Extension — the §7 generalisation: three memory classes.

Sweeps accelerator capacities on a CPU + 2-accelerator platform and
verifies the k = 2 equivalence cost (the generalised engine must not be
meaningfully slower than the specialised dual-memory one).
"""

import pytest

from repro.dags.datasets import small_rand_set
from repro.experiments.figures import RAND_PLATFORM
from repro.experiments.report import render_table
from repro.multi import (
    MultiInfeasibleError,
    MultiPlatform,
    MultiTaskGraph,
    multi_memheft,
    validate_multi_schedule,
)
from repro.scheduling.memheft import memheft


def _tri_graph(scale):
    """SmallRandSet graph lifted to 3 classes (class 2 fastest, class 0
    slowest) with deterministic per-class scaling."""
    dual = small_rand_set(1, scale.small_size)[0]
    g = MultiTaskGraph(3, name=dual.name + "+tri")
    for t in dual.topological_order():
        base = dual.w_blue(t)
        g.add_task(t, (base, base / 2, base / 5))
    for u, v in dual.edges():
        g.add_dependency(u, v, size=dual.size(u, v), comm=dual.comm(u, v))
    return g


@pytest.mark.figure
def test_tri_memory_capacity_sweep(show, scale, benchmark):
    g = _tri_graph(scale)
    plat = MultiPlatform([2, 1, 1])
    base = multi_memheft(g, plat)
    ref = max(base.meta["peaks"][1:]) or 1.0

    def sweep():
        rows = []
        for alpha in (1.0, 0.75, 0.5, 0.25):
            bounded = MultiPlatform([2, 1, 1],
                                    [float("inf"), alpha * ref, alpha * ref])
            try:
                s = multi_memheft(g, bounded)
                validate_multi_schedule(g, bounded, s)
                counts = [0, 0, 0]
                for p in s.placements():
                    counts[p.cls] += 1
                rows.append([alpha, round(s.makespan, 1)] + counts)
            except MultiInfeasibleError:
                rows.append([alpha, None, None, None, None])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["accel alpha", "makespan", "cpu tasks", "accelA", "accelB"], rows,
        title="Three-memory capacity sweep (CPU memory unbounded)"))
    # Work migrates to CPUs as accelerator memories shrink.
    feasible = [r for r in rows if r[1] is not None]
    assert feasible
    assert feasible[-1][2] >= feasible[0][2]


def test_bench_multi_engine_overhead(benchmark, scale):
    """k=2 through the generalised engine vs the dual-memory one."""
    dual = small_rand_set(1, scale.small_size)[0]
    lifted = MultiTaskGraph.from_dual(dual)
    plat = MultiPlatform([1, 1])
    s_multi = benchmark(multi_memheft, lifted, plat)
    s_dual = memheft(dual, RAND_PLATFORM)
    assert s_multi.makespan == pytest.approx(s_dual.makespan)
