"""Ablation — late vs eager transfer placement (DESIGN.md §4).

The paper schedules a task's incoming transfers *as late as possible*
(Algorithms 1-2).  This bench quantifies the choice: eager transfers hold
destination memory longer, so the late policy should never schedule fewer
graphs and typically survives tighter bounds.
"""

import pytest

from repro.dags.datasets import small_rand_set
from repro.experiments.ablation import comm_policy_ablation
from repro.experiments.figures import RAND_PLATFORM
from repro.experiments.report import render_table
from repro.experiments.sweep import default_alphas
from repro.scheduling.memheft import memheft


@pytest.mark.figure
def test_comm_policy_ablation(show, scale, benchmark):
    graphs = small_rand_set(scale.small_n_graphs, scale.small_size)
    rows = benchmark.pedantic(
        comm_policy_ablation,
        args=(graphs, RAND_PLATFORM, default_alphas(scale.n_alphas)),
        rounds=1, iterations=1)
    table = render_table(
        ["alpha", "late:success", "eager:success", "late:norm", "eager:norm"],
        [[round(r.alpha, 3), r.late_success, r.eager_success,
          None if r.late_mean_norm is None else round(r.late_mean_norm, 3),
          None if r.eager_mean_norm is None else round(r.eager_mean_norm, 3)]
         for r in rows],
        title="MemHEFT transfer-placement ablation")
    print("\n" + table)
    for r in rows:
        assert r.late_success >= r.eager_success


def test_bench_eager_policy_overhead(benchmark, scale):
    graph = small_rand_set(1, scale.small_size)[0]
    schedule = benchmark(memheft, graph, RAND_PLATFORM, comm_policy="eager")
    assert len(schedule) == graph.n_tasks
