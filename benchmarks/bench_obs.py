"""Observability benchmark: instrumentation overhead, trace determinism,
and a live exposition-format check.

Three sections, emitted as ``BENCH_obs.json`` (schema in
``benchmarks/README.md``; CI gates it via ``scripts/check_speedup.py
--obs``):

* ``overhead`` — the same deterministic per-graph sweep run disabled
  and enabled (``MEMSCHED_OBS`` semantics: the metrics registry, which
  is what a deployment turns on process-wide; span tracing is a
  separate per-run ``--trace`` opt-in and is reported informationally
  as ``traced_pct``), interleaved at the *finest* grain the workload
  allows: each round runs every graph's sweep back-to-back in both
  variants, alternating which goes first per ``(round + graph) % 2`` —
  the ``bench_faults.py`` interleaving rationale, pushed down from
  whole-sweep to single-graph units so slow drifts (frequency scaling,
  co-tenants) hit both variants equally.  Each back-to-back pair
  yields one CPU-time ratio (``time.process_time`` ignores the other
  cores, and the two sides of a pair share one CPU-frequency regime),
  and a process instance reports the **median** of its pair ratios.
  That median is then taken over several *fresh interpreter instances*
  and the **minimum** kept: per-process code layout shifts the
  measured cost of identical deterministic work by a couple of percent
  either way, so the least-disturbed instance is the honest floor —
  the same least-disturbed-execution rationale as ``bench_faults.py``,
  lifted from runs to processes.  The sweep results must stay
  identical in every pair.  Gate: 3%.
* ``determinism`` — the same traced workload twice, from fresh tracers:
  the span *structure* (ids, parents, names, attributes — everything
  but the timings) must be byte-identical, and traced sweep results
  must equal the untraced reference.
* ``scrape`` — a live :class:`ThreadedServer` under observability,
  exercised over the wire; its ``GET /metrics`` body must parse as
  Prometheus text exposition and account for every request made.

Run::

    PYTHONPATH=src python benchmarks/bench_obs.py --json BENCH_obs.json
    PYTHONPATH=src python benchmarks/bench_obs.py --repeats 5 --graphs 6
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_mod
import statistics
import subprocess
import sys
import tempfile
import time

from repro import obs
from repro.dags import small_rand_set
from repro.experiments.figures import RAND_PLATFORM
from repro.experiments.sweep import default_alphas, normalized_sweep


def _sweep(args: argparse.Namespace):
    graphs = small_rand_set(n_graphs=args.graphs, size=args.size)
    return normalized_sweep(graphs, RAND_PLATFORM,
                            alphas=default_alphas(args.alphas))


# ----------------------------------------------------------------------
# instrumentation overhead
# ----------------------------------------------------------------------
def overhead_instance(args: argparse.Namespace) -> dict:
    """One interpreter instance's overhead measurement: the median of
    per-graph ABBA pair ratios (module docstring)."""
    graphs = list(small_rand_set(n_graphs=args.graphs, size=args.size))
    alphas = default_alphas(args.alphas)

    def unit_plain(graph) -> tuple[float, object]:
        t0 = time.process_time()
        result = normalized_sweep([graph], RAND_PLATFORM, alphas=alphas)
        return time.process_time() - t0, result.cells

    def unit_enabled(graph) -> tuple[float, object]:
        with obs.observing():
            t0 = time.process_time()
            result = normalized_sweep([graph], RAND_PLATFORM,
                                      alphas=alphas)
            return time.process_time() - t0, result.cells

    def unit_traced(graph, trace_path) -> tuple[float, object]:
        with obs.observing(trace_path,
                           trace_ident=("bench", "overhead")):
            t0 = time.process_time()
            result = normalized_sweep([graph], RAND_PLATFORM,
                                      alphas=alphas)
            return time.process_time() - t0, result.cells

    def pair_rounds(other, n_rounds) -> tuple[list, float, float, bool]:
        ratios: list[float] = []
        plain_s = other_s = 0.0
        identical = True
        for rnd in range(n_rounds):
            for k, graph in enumerate(graphs):
                if (rnd + k) % 2 == 0:
                    p_s, p_cells = unit_plain(graph)
                    o_s, o_cells = other(graph)
                else:
                    o_s, o_cells = other(graph)
                    p_s, p_cells = unit_plain(graph)
                ratios.append(o_s / p_s)
                plain_s += p_s
                other_s += o_s
                identical = identical and p_cells == o_cells
        return ratios, plain_s, other_s, identical

    n_rounds = max(args.repeats, 3)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.jsonl")
        # warm-up: imports, allocator, scheduler caches, and the
        # observed paths' registry/tracer setup
        unit_plain(graphs[0])
        unit_enabled(graphs[0])
        unit_traced(graphs[0], path)
        ratios, plain_s, enabled_s, identical = pair_rounds(
            unit_enabled, n_rounds)
        traced_ratios, _, _, traced_identical = pair_rounds(
            lambda graph: unit_traced(graph, path), 1)
    identical = identical and traced_identical
    assert identical, "observed sweep diverged from the plain run"
    return {
        "median_pct": (statistics.median(ratios) - 1.0) * 100.0,
        "traced_median_pct":
            (statistics.median(traced_ratios) - 1.0) * 100.0,
        "n_pairs": len(ratios),
        "plain_cpu_s": plain_s,
        "enabled_cpu_s": enabled_s,
        "identical_results": identical,
    }


def bench_overhead(args: argparse.Namespace) -> dict:
    """Minimum of per-instance medians over fresh interpreter instances
    (module docstring); each instance is a ``--overhead-worker`` child
    of this very script."""
    instances = []
    cmd = [sys.executable, os.path.abspath(__file__), "--overhead-worker",
           "--repeats", str(args.repeats), "--graphs", str(args.graphs),
           "--size", str(args.size), "--alphas", str(args.alphas)]
    for _ in range(args.instances):
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              check=True)
        instances.append(json.loads(proc.stdout.splitlines()[-1]))
    best = min(instances, key=lambda inst: inst["median_pct"])
    overhead_pct = best["median_pct"]
    traced_pct = min(inst["traced_median_pct"] for inst in instances)
    identical = all(inst["identical_results"] for inst in instances)
    section = {
        "n_graphs": args.graphs,
        "graph_size": args.size,
        "n_alphas": args.alphas,
        "repeats": args.repeats,
        "n_instances": args.instances,
        "n_pairs": best["n_pairs"],
        "instance_pct": [round(inst["median_pct"], 2)
                         for inst in instances],
        "plain_cpu_s": round(best["plain_cpu_s"], 4),
        "enabled_cpu_s": round(best["enabled_cpu_s"], 4),
        "overhead_pct": round(overhead_pct, 2),
        "traced_pct": round(traced_pct, 2),
        "identical_results": identical,
    }
    print(f"[overhead]    instances="
          f"{[f'{p:+.2f}%' for p in section['instance_pct']]} -> "
          f"overhead={overhead_pct:+.2f}% (traced {traced_pct:+.2f}%) "
          f"identical={identical}")
    return section


# ----------------------------------------------------------------------
# trace determinism
# ----------------------------------------------------------------------
def _structure(trace_path: str) -> list:
    """A trace's time-free skeleton: every span row minus its timings."""
    from repro.obs.report import load_trace

    return [{k: v for k, v in row.items() if k not in ("t0", "dur")}
            for row in load_trace(trace_path)]


def bench_determinism(args: argparse.Namespace) -> dict:
    """Two traced runs of the same workload must produce the same span
    structure, and the same results as the untraced reference."""
    reference = _sweep(args).cells
    structures, results = [], []
    with tempfile.TemporaryDirectory() as tmp:
        for run in ("a", "b"):
            path = os.path.join(tmp, f"trace_{run}.jsonl")
            with obs.observing(path, trace_ident=("bench", "determinism")):
                results.append(_sweep(args).cells)
            structures.append(_structure(path))
    structure_repeats = structures[0] == structures[1]
    results_identical = results[0] == results[1] == reference
    section = {
        "n_spans": len(structures[0]),
        "structure_repeats": structure_repeats,
        "identical_results": results_identical,
    }
    print(f"[determinism] spans={section['n_spans']} "
          f"structure_repeats={structure_repeats} "
          f"identical_results={results_identical}")
    return section


# ----------------------------------------------------------------------
# live /metrics scrape
# ----------------------------------------------------------------------
def _valid_exposition(text: str) -> tuple[bool, int]:
    """Minimal Prometheus text-format validation: every non-comment line
    is ``name{labels} value`` with a float value; returns (ok, samples)."""
    samples = 0
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        try:
            name_part, value = line.rsplit(" ", 1)
            float(value)
        except ValueError:
            return False, samples
        bare = name_part.split("{", 1)[0]
        if not bare or not bare.replace("_", "").isalnum():
            return False, samples
        samples += 1
    return samples > 0, samples


def bench_scrape(args: argparse.Namespace) -> dict:
    """Exercise a live observed server, then validate its scrape."""
    from repro.service import ServiceApp, ServiceClient, ThreadedServer

    n_requests = 8
    with obs.observing():
        with ThreadedServer(ServiceApp(workers=1)) as srv:
            client = ServiceClient(srv.host, srv.port)
            try:
                for _ in range(n_requests):
                    client.healthz()
                text = client.metrics()
            finally:
                client.close()
    ok, samples = _valid_exposition(text)
    counted = 0
    for line in text.splitlines():
        if line.startswith('memsched_http_requests_total{'
                           'endpoint="/healthz"'):
            counted = int(float(line.rsplit(" ", 1)[1]))
    section = {
        "valid_exposition": ok,
        "n_samples": samples,
        "healthz_requests_made": n_requests,
        "healthz_requests_counted": counted,
        "requests_accounted": counted == n_requests,
    }
    print(f"[scrape]      valid={ok} samples={samples} "
          f"healthz counted={counted}/{n_requests}")
    return section


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved timing rounds per instance "
                             "(floored at 3)")
    parser.add_argument("--graphs", type=int, default=12,
                        help="graphs per sweep")
    parser.add_argument("--size", type=int, default=100,
                        help="tasks per graph")
    parser.add_argument("--alphas", type=int, default=8,
                        help="alpha grid points per sweep")
    parser.add_argument("--instances", type=int, default=3,
                        help="fresh interpreter instances for the "
                             "overhead section")
    parser.add_argument("--overhead-worker", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--json", metavar="PATH",
                        help="write BENCH_obs.json here")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.overhead_worker:
        print(json.dumps(overhead_instance(args)))
        return 0
    report = {
        "bench": "obs",
        "schema_version": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform_mod.python_version(),
        "machine": platform_mod.platform(),
        "cpu_count": os.cpu_count(),
        "overhead": bench_overhead(args),
        "determinism": bench_determinism(args),
        "scrape": bench_scrape(args),
    }
    if args.json:
        from repro._util import atomic_write_json
        atomic_write_json(args.json, report)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
