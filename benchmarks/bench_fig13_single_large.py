"""Figure 13 — makespan vs memory for one LargeRandSet DAG.

Expected shape: same as Figure 11 but on a larger instance — smooth
degradation as memory shrinks, failure only at very tight bounds.
"""

import pytest

from repro.dags.datasets import large_rand_set
from repro.experiments.figures import RAND_PLATFORM, fig13
from repro.experiments.sweep import reference_run
from repro.scheduling.memheft import memheft


@pytest.mark.figure
def test_fig13_regenerates(show, scale, benchmark):
    result = benchmark.pedantic(fig13, args=(scale,), rounds=1, iterations=1)
    show(result)
    data = result.data
    for algo in ("memheft", "memminmin"):
        spans = [p.makespan for p in data.series(algo) if p.makespan]
        assert spans
        assert min(spans) >= data.lower_bound - 1e-9
        # Loosest bound anchors near the memory-oblivious reference.
        assert spans[-1] <= 1.25 * data.heft_makespan
    # Memory-aware heuristics survive below HEFT's requirement.
    mh = data.min_feasible_memory("memheft")
    assert mh is not None and mh < data.heft_memory


def test_bench_memheft_on_large_graph(benchmark, scale):
    graph = large_rand_set(1, scale.large_size)[0]
    ref = reference_run(graph, RAND_PLATFORM)
    # Time the tightest feasible bound on a coarse grid: memory pressure is
    # where the memory-aware bookkeeping actually costs something.
    from repro.scheduling.state import InfeasibleScheduleError
    bounded = RAND_PLATFORM
    for alpha in (0.7, 0.85, 1.0):
        bounded = RAND_PLATFORM.with_uniform_bound(alpha * ref.ref_memory)
        try:
            memheft(graph, bounded)
            break
        except InfeasibleScheduleError:
            continue
    schedule = benchmark(memheft, graph, bounded)
    assert len(schedule) == graph.n_tasks
