"""Figure 11 — makespan vs memory for one SmallRandSet DAG, all four
heuristics plus the lower bound.

Expected shape: the memory-aware makespans decrease towards the HEFT /
MinMin values as memory grows and both anchor exactly at alpha = 1;
the lower bound sits below everything.
"""

import pytest

from repro.experiments.figures import RAND_PLATFORM, fig11
from repro.experiments.sweep import absolute_sweep, reference_run
from repro.dags.datasets import small_rand_set


@pytest.mark.figure
def test_fig11_regenerates(show, scale, benchmark):
    result = benchmark.pedantic(fig11, args=(scale,), rounds=1, iterations=1)
    show(result)
    data = result.data
    assert data.lower_bound <= data.heft_makespan + 1e-9
    assert data.lower_bound <= data.minmin_makespan + 1e-9
    # Feasible series exist and the last point matches the HEFT anchor.
    last = data.series("memheft")[-1]
    assert last.makespan == pytest.approx(data.heft_makespan)
    for algo in ("memheft", "memminmin"):
        spans = [p.makespan for p in data.series(algo) if p.makespan]
        assert spans, f"{algo} never schedules on the sweep grid"
        assert min(spans) >= data.lower_bound - 1e-9


def test_bench_absolute_sweep(benchmark, scale):
    graph = small_rand_set(1, scale.small_size)[0]
    ref = reference_run(graph, RAND_PLATFORM)
    grid = [ref.ref_memory * k / 6 for k in range(1, 7)]
    result = benchmark(absolute_sweep, graph, RAND_PLATFORM, grid)
    assert result.points
