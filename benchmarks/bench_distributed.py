"""Distributed-sweep benchmark: one coordinator, N local service hosts.

Spins up ``--hosts`` in-process service hosts (:class:`ThreadedServer`,
each with its own ``--workers-per-host`` process pool) and runs a
Figure-12-style normalised sweep twice — serially and sharded over the
hosts through :class:`repro.experiments.remote.RemoteExecutor` — emitting
a machine-readable ``BENCH_distributed.json`` (schema in
``benchmarks/README.md``).  The distributed cells are asserted equal to
the serial ones on every run; the wall-clock comparison is the number
that needs a multi-core machine (CI's speedup gate reads this JSON).

A second section does the same for the feasibility frontier
(:func:`frontier_sweep`), whose cells are far coarser (one binary search
per (graph, algorithm)) — the regime where per-request overhead is
negligible and host weighting dominates.

Run::

    PYTHONPATH=src python benchmarks/bench_distributed.py --json BENCH_distributed.json
    PYTHONPATH=src python benchmarks/bench_distributed.py \
        --hosts 2 --workers-per-host 2 --graphs 6 --size 200 --alphas 6
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_mod
import sys
import time
from contextlib import ExitStack

from repro.dags.datasets import large_rand_set
from repro.experiments.figures import RAND_PLATFORM
from repro.experiments.remote import RemoteExecutor, remote_hosts
from repro.experiments.sweep import default_alphas, normalized_sweep
from repro.experiments.engine import frontier_sweep
from repro.service import ServiceApp, ThreadedServer


def _start_hosts(stack: ExitStack, n_hosts: int, workers: int) -> list[str]:
    addresses = []
    for _ in range(n_hosts):
        srv = stack.enter_context(ThreadedServer(ServiceApp(workers=workers)))
        addresses.append(f"{srv.host}:{srv.port}")
    return addresses


def bench_sweep(args: argparse.Namespace) -> tuple[dict, dict]:
    graphs = large_rand_set(args.graphs, args.size)
    alphas = default_alphas(args.alphas)

    t0 = time.perf_counter()
    serial = normalized_sweep(graphs, RAND_PLATFORM, alphas=alphas)
    serial_s = time.perf_counter() - t0

    with ExitStack() as stack:
        addresses = _start_hosts(stack, args.hosts, args.workers_per_host)
        executor = RemoteExecutor(addresses)
        t0 = time.perf_counter()
        with remote_hosts(executor):
            dist = normalized_sweep(graphs, RAND_PLATFORM, alphas=alphas)
        dist_s = time.perf_counter() - t0
        stats = executor.stats()

    identical = (serial.cells == dist.cells
                 and serial.alphas == dist.alphas
                 and serial.algorithms == dist.algorithms)
    assert identical, "distributed sweep diverged from the serial reference"
    result = {
        "n_graphs": args.graphs,
        "graph_size": args.size,
        "n_alphas": args.alphas,
        "n_cells": args.graphs * args.alphas,
        "serial_s": round(serial_s, 4),
        "distributed_s": round(dist_s, 4),
        "speedup": round(serial_s / dist_s, 2),
        "identical_cells": identical,
    }
    print(f"[sweep]    {args.graphs} graphs x {args.size} tasks x "
          f"{args.alphas} alphas: serial={serial_s:.2f}s "
          f"distributed({args.hosts} hosts x {args.workers_per_host} "
          f"workers)={dist_s:.2f}s speedup={result['speedup']:g}x "
          f"identical={identical} (cpu_count={os.cpu_count()})")
    return result, stats


def bench_frontier(args: argparse.Namespace) -> tuple[dict, dict]:
    graphs = large_rand_set(args.graphs, args.size)

    t0 = time.perf_counter()
    serial = frontier_sweep(graphs, RAND_PLATFORM, rel_tol=0.05)
    serial_s = time.perf_counter() - t0

    with ExitStack() as stack:
        addresses = _start_hosts(stack, args.hosts, args.workers_per_host)
        executor = RemoteExecutor(addresses)
        t0 = time.perf_counter()
        with remote_hosts(executor):
            dist = frontier_sweep(graphs, RAND_PLATFORM, rel_tol=0.05)
        dist_s = time.perf_counter() - t0
        stats = executor.stats()

    identical = serial == dist
    assert identical, "distributed frontier diverged from serial"
    result = {
        "n_graphs": args.graphs,
        "graph_size": args.size,
        "n_cells": len(serial),
        "serial_s": round(serial_s, 4),
        "distributed_s": round(dist_s, 4),
        "speedup": round(serial_s / dist_s, 2),
        "identical_cells": identical,
    }
    print(f"[frontier] {len(serial)} (graph, algo) cells: "
          f"serial={serial_s:.2f}s distributed={dist_s:.2f}s "
          f"speedup={result['speedup']:g}x identical={identical}")
    return result, stats


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--hosts", type=int, default=2,
                        help="local service hosts to start")
    parser.add_argument("--workers-per-host", type=int, default=2,
                        help="process-pool size per host (/healthz weight)")
    parser.add_argument("--graphs", type=int, default=8,
                        help="LargeRandSet graphs in the sweep")
    parser.add_argument("--size", type=int, default=300,
                        help="tasks per graph")
    parser.add_argument("--alphas", type=int, default=8,
                        help="alpha grid points")
    parser.add_argument("--skip-frontier", action="store_true")
    parser.add_argument("--json", metavar="PATH",
                        help="write BENCH_distributed.json here")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    sweep, sweep_stats = bench_sweep(args)
    report = {
        "bench": "distributed",
        "schema_version": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform_mod.python_version(),
        "machine": platform_mod.platform(),
        "cpu_count": os.cpu_count(),
        "n_hosts": args.hosts,
        "workers_per_host": args.workers_per_host,
        "sweep": sweep,
        "sweep_hosts": sweep_stats,
    }
    if not args.skip_frontier:
        frontier, frontier_stats = bench_frontier(args)
        report["frontier"] = frontier
        report["frontier_hosts"] = frontier_stats
    if args.json:
        from repro._util import atomic_write_json
        atomic_write_json(args.json, report)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
