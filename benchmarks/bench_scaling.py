"""Heuristic runtime scaling with graph size, and the engine benchmarks.

The paper quotes a worst-case complexity of ``O(n^2 (n + m))`` for both
heuristics (§5.2).  The pytest-benchmark half of this file times MemHEFT
and MemMinMin on a size ladder of the LargeRandSet family — the measured
growth should stay polynomial and comfortably handle the 1000-task paper
scale.

Run as a script to benchmark the engine end to end::

    PYTHONPATH=src python benchmarks/bench_scaling.py [sizes...] \
        [--jobs N] [--json PATH] [--sweep-graphs G] [--sweep-size S]

Three benchmark sections, each emitted into a machine-readable
``BENCH_scaling.json`` (schema documented in ``benchmarks/README.md``) so
the perf trajectory is tracked across PRs:

* **kernel** — the unified incremental EST kernel against the seed
  implementation (``seed`` = from-scratch ESTs + O(l) suffix-max profile
  rebuilds, reproduced by ``LegacySuffixMaxProfile``; ``fresh`` =
  from-scratch ESTs over block-max profiles; ``incremental`` = the
  shipped kernel on the scalar backend), plus one shipped-heuristic
  timing per available vectorized kernel backend (``numpy_s`` and, with
  a C toolchain, ``compiled_s`` — all placement-identical).
* **selection** — the lazy candidate heaps of
  :mod:`repro.scheduling.candidates` against the naive full-rescan
  selection loops (``lazy=True`` vs ``lazy=False``), on the standard
  LargeRandSet shape and on a wide variant where the available set — and
  so the naive O(n²) rescan — is large.
* **sweep** (with ``--jobs N``) — a Figure-12-style normalised sweep run
  serially and sharded over N worker processes; the cells are asserted
  identical and the wall-clock speedup reported.  ``cpu_count`` is
  recorded alongside: on a single-core container the parallel path can
  only lose.

All compared configurations produce decision-for-decision identical
schedules (asserted on every run).
"""

import argparse
import math
import os
import platform as platform_mod
import sys
import time

import pytest

from repro._util import EPS
from repro.core.memory_profile import MemoryProfile
from repro.core.platform import Platform
from repro.core.validation import validate_schedule
from repro.dags.daggen import random_dag
from repro.dags.datasets import large_rand_set
from repro.experiments.figures import RAND_PLATFORM
from repro.experiments.sweep import default_alphas, normalized_sweep, spread_speeds
from repro.scheduling.heft import heft
from repro.scheduling.kernel import available_backends
from repro.scheduling.memheft import memheft
from repro.scheduling.memminmin import memminmin
from repro.scheduling.state import SchedulerState
from repro.scheduling.sufferage import memsufferage

SIZES = (25, 50, 100, 200)


@pytest.mark.parametrize("size", SIZES)
def test_bench_memheft_scaling(benchmark, size):
    graph = random_dag(size=size, rng=size,
                       w_range=(1, 100), c_range=(1, 100), f_range=(1, 100))
    schedule = benchmark(memheft, graph, RAND_PLATFORM)
    assert len(schedule) == size


@pytest.mark.parametrize("size", SIZES)
def test_bench_memminmin_scaling(benchmark, size):
    graph = random_dag(size=size, rng=size,
                       w_range=(1, 100), c_range=(1, 100), f_range=(1, 100))
    schedule = benchmark(memminmin, graph, RAND_PLATFORM)
    assert len(schedule) == size


# ----------------------------------------------------------------------
# incremental-kernel comparison (script mode)
# ----------------------------------------------------------------------
class LegacySuffixMaxProfile(MemoryProfile):
    """The seed's ``earliest_fit``: full suffix-max rebuild per mutation."""

    __slots__ = ("_suffix_max", "_sm_version")

    def __init__(self, capacity: float = math.inf) -> None:
        super().__init__(capacity)
        self._suffix_max = None
        self._sm_version = -1

    def _ensure_suffix_max(self) -> list:
        if self._sm_version != self.version or self._suffix_max is None:
            sm = [0.0] * len(self._vals)
            running = -math.inf
            for k in range(len(self._vals) - 1, -1, -1):
                running = max(running, self._vals[k])
                sm[k] = running
            self._suffix_max = sm
            self._sm_version = self.version
        return self._suffix_max

    def earliest_fit(self, need: float, not_before: float = 0.0) -> float:
        if need <= EPS:
            return max(0.0, not_before)
        if need > self.capacity + EPS:
            return math.inf
        threshold = self.capacity - need
        sm = self._ensure_suffix_max()
        lo, hi = 0, len(sm)
        while lo < hi:
            mid = (lo + hi) // 2
            if sm[mid] <= threshold + EPS:
                hi = mid
            else:
                lo = mid + 1
        if lo == len(sm):
            return math.inf
        t = self._xs[lo] if lo > 0 else 0.0
        return max(t, not_before)


def _make_state(graph, platform, mode: str) -> SchedulerState:
    # Pin the scalar backend: this section isolates profile/EST
    # incrementality; the vectorized backends get their own rows below.
    state = SchedulerState(graph, platform,
                           incremental=(mode == "incremental"),
                           backend="scalar")
    if mode == "seed":
        state.mem = {m: LegacySuffixMaxProfile(platform.capacity(m))
                     for m in state.memories}
    return state


def _run_memheft(graph, platform, mode: str):
    from repro.scheduling.ranks import rank_order
    state = _make_state(graph, platform, mode)
    remaining = rank_order(graph)
    while remaining:
        for index, task in enumerate(remaining):
            if not state.is_ready(task):
                continue
            best = state.best_est(task)
            if best is None:
                continue
            state.commit(best)
            remaining.pop(index)
            break
        else:
            raise RuntimeError("infeasible")
    return state.finalize("memheft")


def _run_memminmin(graph, platform, mode: str):
    state = _make_state(graph, platform, mode)
    index = {t: k for k, t in enumerate(graph.topological_order())}
    available = set(graph.roots())
    while available:
        best = None
        for task in sorted(available, key=index.__getitem__):
            cand = state.best_est(task)
            if cand is None:
                continue
            if best is None or cand.eft < best.eft - EPS:
                best = cand
        if best is None:
            raise RuntimeError("infeasible")
        state.commit(best)
        available.discard(best.task)
        available.update(state.pop_newly_ready())
    return state.finalize("memminmin")


def _assert_identical(schedules: dict, reference: str, graph, label: str):
    ref = schedules[reference]
    for mode, sched in schedules.items():
        if mode == reference:
            continue
        for t in graph.tasks():
            assert sched.placement(t) == ref.placement(t), \
                f"{label}/{mode} diverged on {t!r}"


def _bench_platforms(graph):
    base = heft(graph, Platform(1, 1))
    ref = max(base.meta["peak_blue"], base.meta["peak_red"])
    return [
        ("unbounded", Platform(1, 1)),
        ("bounded@0.8", Platform(1, 1).with_uniform_bound(0.8 * ref)),
    ]


def bench_kernel(size: int) -> list[dict]:
    """seed vs fresh vs incremental EST kernel (identical schedules)."""
    graph = random_dag(size=size, rng=size,
                       w_range=(1, 100), c_range=(1, 100), f_range=(1, 100))
    runners = [("memheft", _run_memheft, memheft),
               ("memminmin", _run_memminmin, memminmin)]
    vec_backends = [b for b in available_backends() if b != "scalar"]
    rows = []
    for plat_name, platform in _bench_platforms(graph):
        for algo_name, runner, shipped_fn in runners:
            times = {}
            schedules = {}
            for mode in ("seed", "fresh", "incremental"):
                t0 = time.perf_counter()
                schedules[mode] = runner(graph, platform, mode)
                times[mode] = time.perf_counter() - t0
            # Anchor the comparison to the *shipped* entry point so the
            # bench loops cannot silently drift from the real heuristics.
            schedules["shipped"] = shipped_fn(graph, platform)
            # One row column per vectorized kernel backend, through the
            # shipped heuristic (placement-identical by construction).
            for backend in vec_backends:
                t0 = time.perf_counter()
                schedules[backend] = shipped_fn(graph, platform,
                                                backend=backend)
                times[backend] = time.perf_counter() - t0
            _assert_identical(schedules, "incremental", graph, algo_name)
            speedup = times["seed"] / times["incremental"]
            backend_bits = "".join(
                f" {b}={times[b]:7.3f}s" for b in vec_backends)
            print(f"kernel    n={size:5d} {algo_name:12s} {plat_name:12s} "
                  f"seed={times['seed']:7.3f}s fresh={times['fresh']:7.3f}s "
                  f"incremental={times['incremental']:7.3f}s"
                  f"{backend_bits} speedup={speedup:5.2f}x")
            row = {
                "n": size, "algorithm": algo_name, "platform": plat_name,
                "seed_s": times["seed"], "fresh_s": times["fresh"],
                "incremental_s": times["incremental"],
                "speedup_seed_over_incremental": speedup,
            }
            for backend in vec_backends:
                row[f"{backend}_s"] = times[backend]
                row[f"speedup_seed_over_{backend}"] = (
                    times["seed"] / times[backend])
            rows.append(row)
    return rows


def bench_selection(size: int) -> list[dict]:
    """Lazy candidate heaps vs naive rescan loops (identical schedules)."""
    shapes = [
        ("standard", dict(w_range=(1, 100), c_range=(1, 100),
                          f_range=(1, 100))),
        # A wide DAG keeps the available set large — the regime where the
        # naive per-step rescan is O(n) and the heap pays off.
        ("wide", dict(width=0.8, density=0.3, jumps=2,
                      w_range=(1, 100), c_range=(1, 100), f_range=(1, 100))),
    ]
    heuristics = [("memheft", memheft), ("memminmin", memminmin),
                  ("memsufferage", memsufferage)]
    rows = []
    for shape_name, kwargs in shapes:
        graph = random_dag(size=size, rng=size, **kwargs)
        for plat_name, platform in _bench_platforms(graph):
            for algo_name, fn in heuristics:
                t0 = time.perf_counter()
                lazy = fn(graph, platform, lazy=True)
                lazy_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                naive = fn(graph, platform, lazy=False)
                naive_s = time.perf_counter() - t0
                _assert_identical({"lazy": lazy, "naive": naive}, "lazy",
                                  graph, algo_name)
                speedup = naive_s / lazy_s
                print(f"selection n={size:5d} {algo_name:12s} "
                      f"{shape_name:8s} {plat_name:12s} "
                      f"lazy={lazy_s:7.3f}s naive={naive_s:7.3f}s "
                      f"speedup={speedup:5.2f}x")
                rows.append({
                    "n": size, "algorithm": algo_name, "graph": shape_name,
                    "platform": plat_name, "lazy_s": lazy_s,
                    "naive_s": naive_s, "speedup_naive_over_lazy": speedup,
                })
    return rows


def bench_hetero(size: int, spreads=(0.0, 0.25, 0.5)) -> list[dict]:
    """Heterogeneous (per-processor speeds) mode: wall-clock and makespan
    of the per-finish-time kernel across speed spreads on a 4+2 hybrid
    platform.  Every schedule is re-checked by the speed-aware validator,
    and the spread-0 run is asserted placement-identical to the plain
    homogeneous platform (the uniform-class fast path)."""
    graph = random_dag(size=size, rng=size,
                       w_range=(1, 100), c_range=(1, 100), f_range=(1, 100))
    base = Platform(4, 2)
    heuristics = [("memheft", memheft), ("memminmin", memminmin),
                  ("memsufferage", memsufferage)]
    plain = {name: fn(graph, base) for name, fn in heuristics}
    rows = []
    for spread in spreads:
        platform = spread_speeds(base, spread)
        for algo_name, fn in heuristics:
            t0 = time.perf_counter()
            schedule = fn(graph, platform)
            wall = time.perf_counter() - t0
            validate_schedule(graph, platform, schedule)
            if spread == 0.0:
                _assert_identical({"hetero0": schedule,
                                   "plain": plain[algo_name]},
                                  "plain", graph, algo_name)
            ratio = schedule.makespan / plain[algo_name].makespan
            print(f"hetero    n={size:5d} {algo_name:12s} "
                  f"spread={spread:4.2f} {wall:7.3f}s "
                  f"makespan={schedule.makespan:10.2f} vs_hom={ratio:5.3f}")
            rows.append({
                "n": size, "algorithm": algo_name, "spread": spread,
                "wall_s": wall, "makespan": schedule.makespan,
                "ratio_to_homogeneous": ratio,
            })
    return rows


def bench_sweep(jobs: int, n_graphs: int, size: int, n_alphas: int) -> dict:
    """Figure-12-style normalised sweep, serial vs sharded over ``jobs``
    processes, cells asserted byte-identical."""
    graphs = large_rand_set(n_graphs, size)
    alphas = default_alphas(n_alphas)
    t0 = time.perf_counter()
    serial = normalized_sweep(graphs, RAND_PLATFORM, alphas=alphas, jobs=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = normalized_sweep(graphs, RAND_PLATFORM, alphas=alphas,
                                jobs=jobs)
    parallel_s = time.perf_counter() - t0
    identical = (serial.cells == parallel.cells
                 and serial.alphas == parallel.alphas
                 and serial.algorithms == parallel.algorithms)
    assert identical, "parallel sweep diverged from the serial reference"
    speedup = serial_s / parallel_s
    print(f"sweep     {n_graphs} graphs x {size} tasks x {n_alphas} alphas "
          f"serial={serial_s:.2f}s jobs={jobs}: {parallel_s:.2f}s "
          f"speedup={speedup:.2f}x identical_cells={identical} "
          f"(cpu_count={os.cpu_count()})")
    return {
        "jobs": jobs, "n_graphs": n_graphs, "graph_size": size,
        "n_alphas": n_alphas, "serial_s": serial_s,
        "parallel_s": parallel_s, "speedup": speedup,
        "identical_cells": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="engine benchmarks (kernel / selection / sweep); "
                    "emits BENCH_scaling.json")
    parser.add_argument("sizes", nargs="*", type=int, default=None,
                        help="graph sizes for the kernel/selection benches "
                             "(default: 500 1000 2000)")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="also run the sweep bench sharded over N "
                             "processes (0 = one per CPU)")
    parser.add_argument("--json", default="BENCH_scaling.json",
                        help="output path ('' disables)")
    parser.add_argument("--sweep-graphs", type=int, default=8,
                        help="graphs in the sweep bench")
    parser.add_argument("--sweep-size", type=int, default=300,
                        help="tasks per graph in the sweep bench")
    parser.add_argument("--sweep-alphas", type=int, default=8,
                        help="alpha grid points in the sweep bench")
    parser.add_argument("--skip-kernel", action="store_true")
    parser.add_argument("--skip-selection", action="store_true")
    parser.add_argument("--hetero", action="store_true",
                        help="also run the heterogeneous (per-processor "
                             "speeds) mode: speed-spread ladder on a 4+2 "
                             "platform, schedules validated and the "
                             "spread-0 case asserted identical to the "
                             "homogeneous fast path")
    args = parser.parse_args(argv)
    sizes = args.sizes or [500, 1000, 2000]

    report = {
        "bench": "scaling",
        "schema_version": 2,
        "backends": list(available_backends()),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "machine": platform_mod.platform(),
        "cpu_count": os.cpu_count(),
        "sizes": sizes,
    }
    if not args.skip_kernel:
        print("incremental EST kernel vs seed implementation "
              "(identical schedules asserted)")
        report["kernel"] = [row for n in sizes for row in bench_kernel(n)]
    if not args.skip_selection:
        print("lazy candidate selection vs naive rescan "
              "(identical schedules asserted)")
        report["selection"] = [row for n in sizes
                               for row in bench_selection(n)]
    if args.hetero:
        print("heterogeneous kernel: speed-spread ladder "
              "(validated; spread 0 asserted == homogeneous)")
        report["hetero"] = [row for n in sizes for row in bench_hetero(n)]
    if args.jobs != 1:
        report["sweep"] = bench_sweep(args.jobs, args.sweep_graphs,
                                      args.sweep_size, args.sweep_alphas)
    if args.json:
        from repro._util import atomic_write_json
        atomic_write_json(args.json, report)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
