"""Heuristic runtime scaling with graph size, and the incremental-EST
kernel comparison.

The paper quotes a worst-case complexity of ``O(n^2 (n + m))`` for both
heuristics (§5.2).  The pytest-benchmark half of this file times MemHEFT
and MemMinMin on a size ladder of the LargeRandSet family — the measured
growth should stay polynomial and comfortably handle the 1000-task paper
scale.

Run as a script to compare the unified incremental EST kernel against the
seed implementation on large daggen graphs::

    PYTHONPATH=src python benchmarks/bench_scaling.py [sizes...]

Three engine configurations are timed:

* ``seed``        — the pre-refactor cost model: every candidate's EST is
  recomputed from scratch each scan *and* ``earliest_fit`` rebuilds an
  O(l) suffix-max array after every profile mutation (reproduced here by
  ``LegacySuffixMaxProfile`` so the comparison stays honest after the
  shared ``MemoryProfile`` was rebuilt around block maxima);
* ``fresh``       — from-scratch candidate evaluation over the new
  block-max profile (``SchedulerState(..., incremental=False)``);
* ``incremental`` — the default unified kernel: cached precedence parts,
  version-keyed ``earliest_fit`` memoisation, block-max profiles.

All three produce decision-for-decision identical schedules (asserted on
every run).
"""

import math
import time

import pytest

from repro._util import EPS
from repro.core.memory_profile import MemoryProfile
from repro.core.platform import Platform
from repro.dags.daggen import random_dag
from repro.experiments.figures import RAND_PLATFORM
from repro.scheduling.heft import heft
from repro.scheduling.memheft import memheft
from repro.scheduling.memminmin import memminmin
from repro.scheduling.state import SchedulerState

SIZES = (25, 50, 100, 200)


@pytest.mark.parametrize("size", SIZES)
def test_bench_memheft_scaling(benchmark, size):
    graph = random_dag(size=size, rng=size,
                       w_range=(1, 100), c_range=(1, 100), f_range=(1, 100))
    schedule = benchmark(memheft, graph, RAND_PLATFORM)
    assert len(schedule) == size


@pytest.mark.parametrize("size", SIZES)
def test_bench_memminmin_scaling(benchmark, size):
    graph = random_dag(size=size, rng=size,
                       w_range=(1, 100), c_range=(1, 100), f_range=(1, 100))
    schedule = benchmark(memminmin, graph, RAND_PLATFORM)
    assert len(schedule) == size


# ----------------------------------------------------------------------
# incremental-kernel comparison (script mode)
# ----------------------------------------------------------------------
class LegacySuffixMaxProfile(MemoryProfile):
    """The seed's ``earliest_fit``: full suffix-max rebuild per mutation."""

    __slots__ = ("_suffix_max", "_sm_version")

    def __init__(self, capacity: float = math.inf) -> None:
        super().__init__(capacity)
        self._suffix_max = None
        self._sm_version = -1

    def _ensure_suffix_max(self) -> list:
        if self._sm_version != self.version or self._suffix_max is None:
            sm = [0.0] * len(self._vals)
            running = -math.inf
            for k in range(len(self._vals) - 1, -1, -1):
                running = max(running, self._vals[k])
                sm[k] = running
            self._suffix_max = sm
            self._sm_version = self.version
        return self._suffix_max

    def earliest_fit(self, need: float, not_before: float = 0.0) -> float:
        if need <= EPS:
            return max(0.0, not_before)
        if need > self.capacity + EPS:
            return math.inf
        threshold = self.capacity - need
        sm = self._ensure_suffix_max()
        lo, hi = 0, len(sm)
        while lo < hi:
            mid = (lo + hi) // 2
            if sm[mid] <= threshold + EPS:
                hi = mid
            else:
                lo = mid + 1
        if lo == len(sm):
            return math.inf
        t = self._xs[lo] if lo > 0 else 0.0
        return max(t, not_before)


def _make_state(graph, platform, mode: str) -> SchedulerState:
    state = SchedulerState(graph, platform, incremental=(mode == "incremental"))
    if mode == "seed":
        state.mem = {m: LegacySuffixMaxProfile(platform.capacity(m))
                     for m in state.memories}
    return state


def _run_memheft(graph, platform, mode: str):
    from repro.scheduling.ranks import rank_order
    state = _make_state(graph, platform, mode)
    remaining = rank_order(graph)
    while remaining:
        for index, task in enumerate(remaining):
            if not state.is_ready(task):
                continue
            best = state.best_est(task)
            if best is None:
                continue
            state.commit(best)
            remaining.pop(index)
            break
        else:
            raise RuntimeError("infeasible")
    return state.finalize("memheft")


def _run_memminmin(graph, platform, mode: str):
    state = _make_state(graph, platform, mode)
    index = {t: k for k, t in enumerate(graph.topological_order())}
    available = set(graph.roots())
    while available:
        best = None
        for task in sorted(available, key=index.__getitem__):
            cand = state.best_est(task)
            if cand is None:
                continue
            if best is None or cand.eft < best.eft - EPS:
                best = cand
        if best is None:
            raise RuntimeError("infeasible")
        state.commit(best)
        available.discard(best.task)
        available.update(state.pop_newly_ready())
    return state.finalize("memminmin")


def _compare(size: int) -> None:
    graph = random_dag(size=size, rng=size,
                       w_range=(1, 100), c_range=(1, 100), f_range=(1, 100))
    base = heft(graph, Platform(1, 1))
    ref = max(base.meta["peak_blue"], base.meta["peak_red"])
    platforms = [
        ("unbounded", Platform(1, 1)),
        ("bounded@0.8", Platform(1, 1).with_uniform_bound(0.8 * ref)),
    ]
    runners = [("memheft", _run_memheft, memheft),
               ("memminmin", _run_memminmin, memminmin)]
    for plat_name, platform in platforms:
        for algo_name, runner, shipped_fn in runners:
            times = {}
            schedules = {}
            for mode in ("seed", "fresh", "incremental"):
                t0 = time.perf_counter()
                schedules[mode] = runner(graph, platform, mode)
                times[mode] = time.perf_counter() - t0
            # Anchor the comparison to the *shipped* entry point so the
            # bench loops cannot silently drift from the real heuristics.
            schedules["shipped"] = shipped_fn(graph, platform)
            for mode in ("seed", "fresh", "shipped"):
                for t in graph.tasks():
                    assert (schedules[mode].placement(t)
                            == schedules["incremental"].placement(t)), \
                        f"{algo_name}/{mode} diverged on {t!r}"
            speedup = times["seed"] / times["incremental"]
            print(f"n={size:5d} {algo_name:10s} {plat_name:12s} "
                  f"seed={times['seed']:7.3f}s fresh={times['fresh']:7.3f}s "
                  f"incremental={times['incremental']:7.3f}s "
                  f"speedup={speedup:5.2f}x")


if __name__ == "__main__":
    import sys
    sizes = [int(a) for a in sys.argv[1:]] or [500, 1000, 2000]
    print("incremental EST kernel vs seed implementation "
          "(identical schedules asserted)")
    for n in sizes:
        _compare(n)
