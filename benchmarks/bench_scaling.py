"""Heuristic runtime scaling with graph size.

The paper quotes a worst-case complexity of ``O(n^2 (n + m))`` for both
heuristics (§5.2).  This bench times MemHEFT and MemMinMin on a size
ladder of the LargeRandSet family — the measured growth should stay
polynomial and comfortably handle the 1000-task paper scale.
"""

import pytest

from repro.dags.daggen import random_dag
from repro.experiments.figures import RAND_PLATFORM
from repro.scheduling.memheft import memheft
from repro.scheduling.memminmin import memminmin

SIZES = (25, 50, 100, 200)


@pytest.mark.parametrize("size", SIZES)
def test_bench_memheft_scaling(benchmark, size):
    graph = random_dag(size=size, rng=size,
                       w_range=(1, 100), c_range=(1, 100), f_range=(1, 100))
    schedule = benchmark(memheft, graph, RAND_PLATFORM)
    assert len(schedule) == size


@pytest.mark.parametrize("size", SIZES)
def test_bench_memminmin_scaling(benchmark, size):
    graph = random_dag(size=size, rng=size,
                       w_range=(1, 100), c_range=(1, 100), f_range=(1, 100))
    schedule = benchmark(memminmin, graph, RAND_PLATFORM)
    assert len(schedule) == size
