"""Extension — the full min-min-family comparison under memory pressure.

MemSufferage (this library's extension, see
``repro.scheduling.sufferage``) against the paper's MemHEFT and MemMinMin
on the SmallRandSet sweep: one table of success rates and normalised
makespans per relative-memory point, plus schedule-quality metrics at a
representative bound.
"""

import pytest

from repro.dags.datasets import small_rand_set
from repro.experiments.figures import RAND_PLATFORM
from repro.experiments.metrics import STATS_HEADERS, schedule_stats
from repro.experiments.report import render_normalized_sweep, render_table
from repro.experiments.sweep import default_alphas, normalized_sweep
from repro.scheduling.registry import get_scheduler
from repro.scheduling.state import InfeasibleScheduleError
from repro.scheduling.sufferage import memsufferage

FAMILY = ("memheft", "memminmin", "memsufferage")


@pytest.mark.figure
def test_family_sweep(show, scale, benchmark):
    graphs = small_rand_set(scale.small_n_graphs, scale.small_size)
    result = benchmark.pedantic(
        normalized_sweep,
        args=(graphs, RAND_PLATFORM, FAMILY, default_alphas(scale.n_alphas)),
        rounds=1, iterations=1)
    print()
    print(render_normalized_sweep(result, title="Heuristic family sweep "
                                                "(memsufferage = extension)"))
    for algo in FAMILY:
        rates = [c.success_rate for c in result.series(algo)]
        assert rates == sorted(rates)
        assert rates[-1] == 1.0


@pytest.mark.figure
def test_family_quality_metrics(show, scale, benchmark):
    graph = small_rand_set(1, scale.small_size)[0]
    rows = []

    def run():
        rows.clear()
        for name in FAMILY:
            try:
                s = get_scheduler(name)(graph, RAND_PLATFORM)
            except InfeasibleScheduleError:  # pragma: no cover
                continue
            stats = schedule_stats(graph, RAND_PLATFORM, s)
            rows.append([name] + stats.as_row())
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(["algorithm"] + STATS_HEADERS, rows,
                       title=f"Schedule quality on {graph.name} (unbounded)"))
    assert len(rows) == len(FAMILY)


def test_bench_memsufferage(benchmark, scale):
    graph = small_rand_set(1, scale.small_size)[0]
    schedule = benchmark(memsufferage, graph, RAND_PLATFORM)
    assert len(schedule) == graph.n_tasks
