"""Fault-tolerance benchmark: checkpoint overhead, fault-plan
reproducibility, and goodput/recovery under injected faults.

Three sections, emitted as ``BENCH_faults.json`` (schema in
``benchmarks/README.md``; CI gates it via ``scripts/check_speedup.py
--faults``):

* ``checkpoint`` — a fault-free ``--scale ci`` figure sweep run plain
  and with ``--checkpoint`` journaling, min-of-``--repeats`` wall
  clocks.  The journal must cost at most a few percent (gate: 5%) and
  the rendered figure must stay byte-identical.
* ``reproducibility`` — the same fault plan, driven twice against fresh
  injectors and fresh hosts, must produce the same plan digest, the
  same injected event sequence (both the pure-injector replay and the
  live hosts' ``/healthz`` fault summaries), and sweep results
  identical to the serial reference.
* ``goodput`` — distributed sweeps under increasing chaos: a supervised
  worker-process kill, a whole-host kill, a stream truncation, a
  blackout window, then everything at once.  Reports per-plan wall
  clock against the fault-free distributed baseline and asserts every
  run still matches the serial cells exactly.

Chaos hosts are real ``memsched serve`` subprocesses (fault plans
arrive via ``MEMSCHED_FAULT_PLAN`` in each host's environment, exactly
as the CI chaos leg drives them), so an injected host kill is a real
process death — and the coordinator's own plan (blackout windows) is
installed in-process.

Run::

    PYTHONPATH=src python benchmarks/bench_faults.py --json BENCH_faults.json
    PYTHONPATH=src python benchmarks/bench_faults.py --repeats 5 --graphs 6
"""

from __future__ import annotations

import argparse
import os
import platform as platform_mod
import socket
import subprocess
import sys
import time

from repro import faults
from repro.dags import small_rand_set
from repro.experiments import EXPERIMENTS, checkpointing, get_scale
from repro.experiments.figures import RAND_PLATFORM
from repro.experiments.remote import RemoteExecutor, remote_hosts
from repro.experiments.sweep import default_alphas, normalized_sweep
from repro.faults import FaultInjector, FaultPlan
from repro.service import ServiceClient


# ----------------------------------------------------------------------
# checkpoint overhead
# ----------------------------------------------------------------------
def bench_checkpoint(args: argparse.Namespace) -> dict:
    """Fault-free sweep, plain vs checkpoint-journaled.

    The default workload is the same normalized sweep the chaos sections
    use: every cell goes through ``map_cells`` and is therefore journaled,
    and the compute is deterministic — so the measured gap is the journal
    cost, not solver variance.  ``--figure fig10`` (etc.) swaps in a real
    figure driver instead; note those mix in work outside the
    checkpointed path (fig10's ILP reference dominates its runtime and
    is noisy enough to swamp a few-percent journal cost).
    """
    import tempfile

    if args.figure == "sweep":
        scale = None

        def driver(_scale: object) -> object:
            return _serial_reference(args)
    else:
        scale = get_scale(args.scale)
        driver = EXPERIMENTS[args.figure]

    def once_plain() -> tuple[float, str]:
        t0 = time.perf_counter()
        result = driver(scale)
        return time.perf_counter() - t0, str(result)

    def once_checkpointed() -> tuple[float, str]:
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "ck.jsonl")
            t0 = time.perf_counter()
            with checkpointing(path):
                result = driver(scale)
            return time.perf_counter() - t0, str(result)

    import statistics

    once_plain()   # warm-up: imports, allocator, scheduler caches
    # Time in adjacent plain/journaled pairs and report the median of the
    # per-pair ratios: machine-level drift (CPU frequency, co-tenants) is
    # multiplicative and slow, so it hits both halves of a pair nearly
    # equally and cancels in the ratio — where min-of-N of each variant
    # separately would keep the full drift as bias.
    # A handful of pairs is not enough for a stable median on a busy
    # machine — floor the pair count regardless of --repeats (each pair
    # is only ~2x the sweep time).
    n_pairs = max(args.repeats, 9)
    timings = [(once_plain(), once_checkpointed())
               for _ in range(n_pairs)]
    ratios = [ck[0] / plain[0] for plain, ck in timings]
    overhead_pct = (statistics.median(ratios) - 1.0) * 100.0
    plain_s, plain_out = min(t[0] for t in timings)
    ck_s, ck_out = min(t[1] for t in timings)
    identical = plain_out == ck_out
    assert identical, "checkpointed sweep diverged from the plain run"
    section = {
        "figure": args.figure,
        "scale": None if args.figure == "sweep" else args.scale,
        "n_cells": (args.graphs * args.alphas
                    if args.figure == "sweep" else None),
        "repeats": args.repeats,
        "plain_s": round(plain_s, 4),
        "checkpointed_s": round(ck_s, 4),
        "overhead_pct": round(overhead_pct, 2),
        "identical_results": identical,
    }
    print(f"[checkpoint] {args.figure}@{args.scale}: plain={plain_s:.3f}s "
          f"journaled={ck_s:.3f}s overhead={overhead_pct:+.2f}% "
          f"identical={identical}")
    return section


# ----------------------------------------------------------------------
# subprocess service hosts
# ----------------------------------------------------------------------
def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ServeHosts:
    """N ``memsched serve`` subprocesses, each with its own (optional)
    ``MEMSCHED_FAULT_PLAN`` — the deployment shape the CI chaos leg
    exercises, and the only honest way to benchmark a whole-host kill."""

    def __init__(self, plans: list, workers: int = 2) -> None:
        self.procs: list[subprocess.Popen] = []
        self.addrs: list[str] = []
        for plan in plans:
            port = _free_port()
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (os.path.dirname(os.path.dirname(
                    os.path.abspath(faults.__file__))),
                    env.get("PYTHONPATH")) if p)
            if plan:
                env["MEMSCHED_FAULT_PLAN"] = plan
            else:
                env.pop("MEMSCHED_FAULT_PLAN", None)
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "serve",
                 "--port", str(port), "--workers", str(workers)],
                env=env, stdin=subprocess.DEVNULL,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            self.procs.append(proc)
            self.addrs.append(f"127.0.0.1:{port}")

    def wait_ready(self, timeout: float = 60.0) -> None:
        for addr in self.addrs:
            host, port = addr.split(":")
            client = ServiceClient(host, int(port), timeout=5.0)
            try:
                client.wait_until_ready(timeout)
            finally:
                client.close()

    def fault_summaries(self) -> list:
        """Each live host's ``/healthz`` fault accounting (``None`` for
        dead hosts or hosts with no active plan)."""
        out = []
        for addr in self.addrs:
            host, port = addr.split(":")
            client = ServiceClient(host, int(port), timeout=5.0)
            try:
                out.append(client.healthz().get("faults"))
            except Exception:
                out.append(None)
            finally:
                client.close()
        return out

    def close(self) -> None:
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def __enter__(self) -> "ServeHosts":
        self.wait_ready()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _chaos_sweep(args: argparse.Namespace, host_plans: list,
                 coordinator_plan=None, workers: int = 2):
    """One distributed normalized sweep over fresh subprocess hosts.

    Returns ``(sweep_result, seconds, executor_stats, host_summaries)``.
    """
    graphs = small_rand_set(n_graphs=args.graphs, size=args.size)
    alphas = default_alphas(args.alphas)
    with ServeHosts(host_plans, workers=workers) as hosts:
        executor = RemoteExecutor(hosts.addrs, retry_budget=2,
                                  backoff_base=0.02, backoff_cap=0.2,
                                  timeout=60.0)
        with faults.fault_plan(coordinator_plan):
            t0 = time.perf_counter()
            with remote_hosts(executor):
                result = normalized_sweep(graphs, RAND_PLATFORM,
                                          alphas=alphas)
            elapsed = time.perf_counter() - t0
        summaries = hosts.fault_summaries()
    return result, elapsed, executor.stats(), summaries


def _serial_reference(args: argparse.Namespace):
    graphs = small_rand_set(n_graphs=args.graphs, size=args.size)
    return normalized_sweep(graphs, RAND_PLATFORM,
                            alphas=default_alphas(args.alphas))


# ----------------------------------------------------------------------
# reproducibility
# ----------------------------------------------------------------------
def bench_reproducibility(args: argparse.Namespace) -> dict:
    """Same seed, fresh everything: digests, event sequences, and sweep
    results must all repeat exactly."""
    plan = FaultPlan.parse(
        "seed=1234,truncate=1.0,truncate_limit=1,kill=1.0,kill_limit=1")
    digests = {plan.digest(), FaultPlan.parse(plan.to_dict()).digest()}

    # Pure injector replay: the event sequence is a function of the seed.
    def drive(injector: FaultInjector) -> list:
        for _ in range(64):
            injector.fire("server.drop", 0.3)
            injector.fire("stream.truncate", 0.2)
            injector.pick("stream.truncate.row", 17)
        return injector.events

    events_repeat = drive(FaultInjector(plan)) == drive(FaultInjector(plan))

    # Live replay: host 0 carries the chaos plan, host 1 is clean; the
    # whole campaign twice, from scratch.  Draw *counts* are
    # load-dependent (hosts race for chunks, so how often a site is
    # consulted varies run to run); what the seed pins is the decision
    # sequence — so a rate-1.0 site with ``kill_limit=1`` must fire
    # exactly once in every run.
    serial = _serial_reference(args)
    host_plans = ["seed=1234,kill=1.0,kill_limit=1", None]
    run_a, _, _, sum_a = _chaos_sweep(args, host_plans)
    run_b, _, _, sum_b = _chaos_sweep(args, host_plans)
    results_identical = (run_a.cells == run_b.cells == serial.cells)

    def _kills_fired(summary) -> int:
        sites = (summary or {}).get("sites", {})
        return sum(v["fired"] for s, v in sites.items() if "kill" in s)

    a0 = (sum_a or [None])[0] or {}
    b0 = (sum_b or [None])[0] or {}
    injections_repeat = (
        a0.get("plan_digest") == b0.get("plan_digest")
        == FaultPlan.parse(host_plans[0]).digest()
        and _kills_fired(a0) == _kills_fired(b0) == 1)
    section = {
        "plan": plan.to_dict(),
        "plan_digest": plan.digest(),
        "digest_stable": len(digests) == 1,
        "events_repeat": events_repeat,
        "identical_results": results_identical,
        "injections_repeat": injections_repeat,
        "host_summaries": sum_a,
    }
    print(f"[repro]      digest_stable={section['digest_stable']} "
          f"events_repeat={events_repeat} "
          f"injections_repeat={injections_repeat} "
          f"identical_results={results_identical}")
    return section


# ----------------------------------------------------------------------
# goodput under chaos
# ----------------------------------------------------------------------
#: (name, per-host MEMSCHED_FAULT_PLAN values, coordinator plan, workers).
#: ``host_kill`` runs single-worker hosts so the injected kill takes the
#: whole service down (a real process death + failover), where ``workers=2``
#: makes the same kill a supervised pool restart instead.
GOODPUT_PLANS = [
    ("worker_kill", ["seed=7,kill=1.0,kill_limit=1", None], None, 2),
    ("host_kill", ["seed=7,kill=1.0,kill_limit=1", None], None, 1),
    ("truncation", ["seed=7,truncate=1.0,truncate_limit=1", None], None, 2),
    ("blackout", [None, None], "seed=7,blackout=0:0:2", 2),
    ("combined",
     ["seed=7,kill=1.0,kill_limit=1,truncate=1.0,truncate_limit=1", None],
     "seed=7,blackout=1:0:1", 2),
]


def _timed_sweep(args: argparse.Namespace, serial, name: str,
                 host_plans: list, coord_plan, workers: int):
    """Min-of-``--repeats`` chaos sweep; every repeat must match serial.

    Fresh hosts per repeat: plans with ``*_limit`` counters are consumed
    by injection, so host reuse would change the fault load."""
    elapsed, stats = None, None
    for _ in range(args.repeats):
        result, one_s, one_stats, _ = _chaos_sweep(
            args, host_plans, coordinator_plan=coord_plan, workers=workers)
        assert result.cells == serial.cells, \
            f"{name}: chaos run diverged from serial"
        if elapsed is None or one_s < elapsed:
            elapsed, stats = one_s, one_stats
    return elapsed, stats


def bench_goodput(args: argparse.Namespace) -> dict:
    serial = _serial_reference(args)
    rows = []
    # One fault-free baseline per host topology in play: comparing a
    # single-worker host-kill run against a two-worker baseline would
    # measure the worker count, not the fault.
    baselines = {}
    for workers in sorted({w for _, _, _, w in GOODPUT_PLANS}):
        elapsed, stats = _timed_sweep(args, serial,
                                      f"fault_free_w{workers}",
                                      [None, None], None, workers)
        baselines[workers] = elapsed
        rows.append({
            "plan": f"fault_free_w{workers}",
            "workers": workers,
            "seconds": round(elapsed, 4),
            "goodput_vs_fault_free": 1.0,
            "retries": stats["retries"],
            "reassigned_chunks": stats["reassigned_chunks"],
            "dead_hosts": 0,
            "identical_results": True,
        })
        print(f"[goodput]    fault_free_w{workers:<2} {elapsed:.3f}s "
              f"(baseline)")
    for name, host_plans, coord_plan, workers in GOODPUT_PLANS:
        elapsed, stats = _timed_sweep(args, serial, name, host_plans,
                                      coord_plan, workers)
        row = {
            "plan": name,
            "workers": workers,
            "seconds": round(elapsed, 4),
            "goodput_vs_fault_free": round(baselines[workers] / elapsed, 3),
            "retries": stats["retries"],
            "reassigned_chunks": stats["reassigned_chunks"],
            "dead_hosts": sum(1 for h in stats["hosts"].values()
                              if not h["alive"]),
            "identical_results": True,
        }
        rows.append(row)
        print(f"[goodput]    {name:<12} {elapsed:.3f}s "
              f"goodput={row['goodput_vs_fault_free']:.2f} "
              f"retries={row['retries']} dead={row['dead_hosts']} "
              f"identical=True")
    return {"n_graphs": args.graphs, "graph_size": args.size,
            "n_alphas": args.alphas, "repeats": args.repeats,
            "plans": rows}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--figure", default="sweep",
                        help="checkpoint-section workload: 'sweep' (the "
                             "deterministic normalized sweep, every cell "
                             "journaled) or an EXPERIMENTS driver name")
    parser.add_argument("--scale", default="ci",
                        help="experiment scale when --figure names a "
                             "figure driver")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; min is reported")
    parser.add_argument("--graphs", type=int, default=12,
                        help="graphs per chaos sweep")
    parser.add_argument("--size", type=int, default=100,
                        help="tasks per chaos-sweep graph")
    parser.add_argument("--alphas", type=int, default=8,
                        help="alpha grid points per chaos sweep (sized so "
                             "compute dominates transport overhead)")
    parser.add_argument("--skip-goodput", action="store_true")
    parser.add_argument("--json", metavar="PATH",
                        help="write BENCH_faults.json here")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    report = {
        "bench": "faults",
        "schema_version": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform_mod.python_version(),
        "machine": platform_mod.platform(),
        "cpu_count": os.cpu_count(),
        "checkpoint": bench_checkpoint(args),
        "reproducibility": bench_reproducibility(args),
    }
    if not args.skip_goodput:
        report["goodput"] = bench_goodput(args)
    if args.json:
        from repro._util import atomic_write_json
        atomic_write_json(args.json, report)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
