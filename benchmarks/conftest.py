"""Shared benchmark fixtures.

Benchmarks default to the ``ci`` scale so ``pytest benchmarks/
--benchmark-only`` finishes in minutes; set ``REPRO_SCALE=default`` or
``REPRO_SCALE=paper`` to grow them (see ``repro.experiments.config``).

Each ``bench_*`` module does two things:

1. regenerates the *content* of one paper table/figure (printed to the
   terminal, captured into EXPERIMENTS.md), and
2. times the representative scheduling computation with pytest-benchmark.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import get_scale


def pytest_configure(config):
    # Benchmarks live outside testpaths; give them their own marker doc.
    config.addinivalue_line("markers", "figure: regenerates a paper figure")


@pytest.fixture(scope="session")
def scale():
    """Scale preset for every benchmark (env: REPRO_SCALE, default ci)."""
    return get_scale(os.environ.get("REPRO_SCALE", "ci"))


@pytest.fixture(scope="session")
def show():
    """Print a figure table so it lands in the captured bench output."""
    def _show(result):
        print()
        print(str(result))
    return _show
