"""Solver micro-benchmarks: the ILP (CPLEX substitute) and the exact eager
search on the paper's worked example."""

import pytest

from repro.core.platform import Platform
from repro.dags.toy import dex
from repro.ilp import build_model, optimal_eager, solve_branch_and_bound


def test_bench_ilp_model_build(benchmark):
    model = benchmark(build_model, dex(), Platform(1, 1, 5, 5))
    assert model.n_constraints > 0


def test_bench_ilp_solve_dex_m5(benchmark):
    def run():
        model = build_model(dex(), Platform(1, 1, 5, 5))
        return solve_branch_and_bound(model, time_limit=120)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.status == "optimal"
    assert res.objective == pytest.approx(6.0, abs=1e-4)


def test_bench_eager_search_dex(benchmark):
    res = benchmark(optimal_eager, dex(), Platform(1, 1, 4, 4))
    assert res.makespan == 7
