"""Figure 12 — LargeRandSet: normalised makespan + success rate vs alpha.

Expected shape (paper §6.2.2): both heuristics schedule everything well
below alpha = 1 (the paper reaches 0.3); MemHEFT's average makespan falls
roughly linearly with memory; MemMinMin dominates when memory is critical
while MemHEFT edges ahead when memory is plentiful.
"""

import pytest

from repro.dags.datasets import large_rand_set
from repro.experiments.figures import RAND_PLATFORM, fig12
from repro.scheduling.memminmin import memminmin


@pytest.mark.figure
def test_fig12_regenerates(show, scale, benchmark):
    result = benchmark.pedantic(fig12, args=(scale,), rounds=1, iterations=1)
    show(result)
    data = result.data
    for algo in ("memheft", "memminmin"):
        rates = [c.success_rate for c in data.series(algo)]
        assert rates == sorted(rates)
        assert rates[-1] == 1.0
        # Heuristics keep succeeding strictly below alpha = 1.
        assert sum(r == 1.0 for r in rates) >= 2
    # Normalised makespan decreases towards 1 as memory grows.
    for algo in ("memheft", "memminmin"):
        spans = [c.mean_norm_makespan for c in data.series(algo)
                 if c.mean_norm_makespan is not None]
        assert spans[-1] == pytest.approx(1.0, abs=0.1)
        assert max(spans) >= spans[-1] - 1e-9


def test_bench_memminmin_on_large_graph(benchmark, scale):
    graph = large_rand_set(1, scale.large_size)[0]
    schedule = benchmark(memminmin, graph, RAND_PLATFORM)
    assert len(schedule) == graph.n_tasks
