"""Table 1 — kernel running times, and the cost of building the linear
algebra DAGs they parameterise."""

import pytest

from repro.dags.linalg import KERNEL_TIMES_MS, cholesky_dag, lu_dag
from repro.experiments.figures import table1


@pytest.mark.figure
def test_table1_regenerates(show, benchmark):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    show(result)
    assert result.data == KERNEL_TIMES_MS


def test_bench_lu_dag_construction(benchmark, scale):
    g = benchmark(lu_dag, scale.lu_tiles)
    assert g.n_tasks > 0


def test_bench_cholesky_dag_construction(benchmark, scale):
    g = benchmark(cholesky_dag, scale.cholesky_tiles)
    assert g.n_tasks > 0
