"""Figure 15 — tiled Cholesky factorisation: makespan vs memory (tiles).

Expected shape: as Figure 14 (Cholesky works on the lower half of the
matrix, so everything happens at roughly half the LU memory footprint).
"""

import pytest

from repro.dags.linalg import cholesky_dag
from repro.experiments.figures import MIRAGE_PLATFORM, fig15
from repro.scheduling.memminmin import memminmin


@pytest.mark.figure
def test_fig15_regenerates(show, scale, benchmark):
    result = benchmark.pedantic(fig15, args=(scale,), rounds=1, iterations=1)
    show(result)
    data = result.data
    mh = data.min_feasible_memory("memheft")
    mm = data.min_feasible_memory("memminmin")
    assert mh is not None
    if mm is not None:
        assert mh <= mm
    for algo in ("memheft", "memminmin"):
        for p in data.series(algo):
            if p.makespan is not None:
                assert p.makespan >= data.lower_bound - 1e-6


def test_cholesky_cheaper_than_lu_at_same_tiles(scale, benchmark):
    """Cross-figure sanity: Cholesky (half the matrix) needs less memory
    and less time than LU for the same tile count."""
    from repro.dags.linalg import lu_dag
    from repro.experiments.sweep import reference_run
    chol = benchmark.pedantic(
        reference_run, args=(cholesky_dag(scale.cholesky_tiles), MIRAGE_PLATFORM),
        rounds=1, iterations=1)
    lu = reference_run(lu_dag(scale.lu_tiles), MIRAGE_PLATFORM)
    if scale.cholesky_tiles == scale.lu_tiles:
        assert chol.ref_memory <= lu.ref_memory
        assert chol.makespan <= lu.makespan


def test_bench_memminmin_cholesky(benchmark, scale):
    graph = cholesky_dag(scale.cholesky_tiles)
    schedule = benchmark(memminmin, graph, MIRAGE_PLATFORM)
    assert len(schedule) == graph.n_tasks
