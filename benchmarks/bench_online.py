"""Online-arrivals benchmark: per-arrival decision latency and makespan
regret of the stateful session scheduler (``repro.online``).

Replays one seeded Poisson arrival stream (the CI workload: ``--arrivals``
jobs, releases quantized to ``--tick`` so same-tick arrivals plan in one
interleaved round) through each arrival policy and emits a
machine-readable ``BENCH_online.json`` (schema in ``benchmarks/README.md``):

* **policies** — per policy (``immediate``, ``batched:Q``, ``replan:W``):
  p50/p99/max per-arrival decision latency, makespan, and regret against
  the clairvoyant offline schedule of the union DAG (release times
  relaxed — a lower bound, so the reported regret upper-bounds the true
  loss).  The CI gate (``scripts/check_speedup.py --online``) enforces
  immediate-greedy p99 <= 50 ms and regret <= 25% on this workload.
* **determinism** — the immediate-policy stream is simulated twice and
  the decision journals byte-compared.
* **identity** — the same jobs with all release times forced to zero are
  simulated online and scheduled offline on the union DAG; placements
  must agree exactly (the zero-release identity the tests pin per
  backend).

Run::

    PYTHONPATH=src python benchmarks/bench_online.py --json BENCH_online.json
    PYTHONPATH=src python benchmarks/bench_online.py --arrivals 40   # smoke
"""

from __future__ import annotations

import argparse
import os
import platform as platform_mod
import sys
import time

from repro.core.platform import Platform
from repro.online import (
    build_union_graph,
    poisson_trace,
    simulate,
    zero_release,
)
from repro.scheduling.kernel import resolve_backend
from repro.scheduling.registry import get_scheduler

#: The CI workload platform: two processors per class, capacities roomy
#: enough that the clairvoyant union schedule is not memory-starved (a
#: starved baseline makes regret meaninglessly negative), tight enough
#: that the memory machinery still runs bounded fits.
BENCH_PLATFORM = Platform(n_blue=2, n_red=2, mem_blue=20000, mem_red=20000)


def _trace(args: argparse.Namespace) -> list:
    return poisson_trace(args.arrivals, seed=args.seed, rate=args.rate,
                         tick=args.tick, size=args.size, width=0.4,
                         density=0.5, jumps=3)


def bench_policies(args: argparse.Namespace, trace: list) -> list[dict]:
    out = []
    for spec in args.policies.split(","):
        spec = spec.strip()
        t0 = time.perf_counter()
        result = simulate(trace, BENCH_PLATFORM, algorithm=args.algorithm,
                          policy=spec)
        wall = time.perf_counter() - t0
        stats = result.latency_stats()
        clairvoyant = result.clairvoyant_makespan()
        regret = result.regret(clairvoyant)
        row = {
            "policy": result.session.policy.name,
            "n_arrivals": len(trace),
            "n_rounds": stats["n_rounds"],
            "p50_ms": stats["p50_ms"],
            "p99_ms": stats["p99_ms"],
            "max_ms": stats["max_ms"],
            "makespan": result.makespan,
            "clairvoyant_makespan": clairvoyant,
            "regret_pct": round(regret * 100.0, 2),
            "wall_s": round(wall, 4),
        }
        out.append(row)
        print(f"[policy]     {row['policy']:<12} "
              f"p50={row['p50_ms']:g}ms p99={row['p99_ms']:g}ms "
              f"regret={row['regret_pct']:+.1f}% "
              f"({row['n_rounds']} rounds, {wall:.2f}s)")
    return out


def bench_determinism(args: argparse.Namespace, trace: list) -> dict:
    j1 = simulate(trace, BENCH_PLATFORM, algorithm=args.algorithm,
                  policy="immediate").journal()
    j2 = simulate(trace, BENCH_PLATFORM, algorithm=args.algorithm,
                  policy="immediate").journal()
    identical = j1 == j2
    result = {
        "identical_journal": identical,
        "journal_bytes": len(j1.encode("utf-8")),
    }
    print(f"[determinism] two replays identical={identical} "
          f"({result['journal_bytes']} journal bytes)")
    return result


def bench_identity(args: argparse.Namespace, trace: list) -> dict:
    online = simulate(zero_release(trace), BENCH_PLATFORM,
                      algorithm=args.algorithm, policy="immediate")
    jobs = sorted(online.session.jobs.values(),
                  key=lambda j: j.arrival_index)
    union = build_union_graph(jobs, BENCH_PLATFORM.n_classes)
    offline = get_scheduler(args.algorithm)(union, BENCH_PLATFORM)
    offline_by_task = {p.task: p for p in offline.placements()}
    identical = True
    for job in jobs:
        for task, placement in job.placements.items():
            ref = offline_by_task[f"{job.job_id}/{task}"]
            identical &= (placement.proc == ref.proc
                          and placement.start == ref.start
                          and placement.finish == ref.finish)
    result = {
        "algorithm": args.algorithm,
        "backend": resolve_backend(None).name,
        "offline_identical": identical,
        "makespan": online.makespan,
    }
    print(f"[identity]   zero-release online == offline: {identical} "
          f"(makespan {online.makespan:g}, "
          f"backend {result['backend']})")
    return result


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--algorithm", default="memheft")
    parser.add_argument("--arrivals", type=int, default=200,
                        help="jobs in the arrival stream (the latency "
                             "gate lives at 200)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--rate", type=float, default=2.0,
                        help="Poisson arrival intensity")
    parser.add_argument("--tick", type=float, default=2.5,
                        help="release quantization (same-tick arrivals "
                             "plan in one round)")
    parser.add_argument("--size", type=int, default=12,
                        help="tasks per job")
    parser.add_argument("--policies",
                        default="immediate,batched:10,replan:16",
                        help="comma-separated policy specs to measure")
    parser.add_argument("--json", metavar="PATH",
                        help="write BENCH_online.json here")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    trace = _trace(args)
    policies = bench_policies(args, trace)
    determinism = bench_determinism(args, trace)
    identity = bench_identity(args, trace)
    report = {
        "bench": "online",
        "schema_version": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform_mod.python_version(),
        "machine": platform_mod.platform(),
        "cpu_count": os.cpu_count(),
        "workload": {
            "arrivals": args.arrivals,
            "seed": args.seed,
            "rate": args.rate,
            "tick": args.tick,
            "size": args.size,
            "algorithm": args.algorithm,
        },
        "policies": policies,
        "determinism": determinism,
        "identity": identity,
    }
    if args.json:
        from repro._util import atomic_write_json
        atomic_write_json(args.json, report)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
