"""Figure 10 — SmallRandSet: normalised makespan and success rate vs
relative memory, heuristics vs the ILP optimum (on the tiny set).

Expected shape (paper §6.2.1): both heuristics near-optimal with ample
memory; success collapses somewhere around alpha ~ 0.35-0.75 while the
optimal schedules keep existing below the heuristics' failure point.
"""

import pytest

from repro.dags.datasets import small_rand_set
from repro.experiments.figures import RAND_PLATFORM, fig10
from repro.experiments.sweep import normalized_sweep
from repro.scheduling.memheft import memheft


@pytest.mark.figure
def test_fig10_regenerates(show, scale, benchmark):
    result = benchmark.pedantic(fig10, args=(scale,), rounds=1, iterations=1)
    show(result)
    heur = result.data["heuristics"]
    # Shape assertions (DESIGN.md §3): full success at alpha = 1 ...
    for algo in ("memheft", "memminmin"):
        assert heur.cell(1.0, algo).success_rate == 1.0
    # ... and success rates monotone in alpha.
    for algo in heur.algorithms:
        rates = [c.success_rate for c in heur.series(algo)]
        assert rates == sorted(rates)
    # The optimal series never succeeds less often than the heuristics.
    opt = result.data["optimal"]
    for alpha in opt.alphas:
        o = opt.cell(alpha, "optimal").n_success
        assert o >= opt.cell(alpha, "memheft").n_success
        assert o >= opt.cell(alpha, "memminmin").n_success


def test_bench_memheft_on_small_rand(benchmark, scale):
    graphs = small_rand_set(scale.small_n_graphs, scale.small_size)

    def run():
        return [memheft(g, RAND_PLATFORM) for g in graphs]

    schedules = benchmark(run)
    assert len(schedules) == len(graphs)


def test_bench_normalized_sweep_one_alpha(benchmark, scale):
    graphs = small_rand_set(min(scale.small_n_graphs, 6), scale.small_size)
    result = benchmark(normalized_sweep, graphs, RAND_PLATFORM,
                       ("memheft", "memminmin"), (0.6,))
    assert result.cells
